package shardrpc

import (
	"bufio"
	"context"
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"polardraw/internal/core"
	"polardraw/internal/reader"
	"polardraw/internal/session"
)

// TestVersionHandshake covers both mismatch directions plus the happy
// path's invariants.
func TestVersionHandshake(t *testing.T) {
	_, ants := penStreams(t, 1, 61)
	_, addr := startServer(t, ServerConfig{Session: sessionCfg(ants, 0.2, 0)})

	// Happy path: Dial performs the handshake transparently.
	client, err := Dial(ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	client.Close(ctx)

	// Old-client direction: a first frame that is not opHello (what a
	// pre-versioning client sends) gets the explicit mismatch error and
	// a hangup, never a misparse. (Covered byte-level in
	// TestServerSurvivesGarbage; here the wrong-version hello.)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	bw := bufio.NewWriter(raw)
	var e enc
	e.u8(protoVersion + 1) // future client
	if err := writeFrame(bw, opHello, e.b); err != nil {
		t.Fatal(err)
	}
	bw.Flush()
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	op, payload, err := readFrame(raw)
	if err != nil || op != opResp {
		t.Fatalf("version-skewed hello: op=0x%02x err=%v", op, err)
	}
	d := dec{b: payload}
	if err := checkStatus(&d); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("version-skewed hello error = %v, want ErrVersionMismatch", err)
	}

	// Old-server direction: a server that negotiates a version below
	// the client's floor must fail Dial with ErrVersionMismatch. (A
	// version between the floor and the client's own is negotiated, not
	// rejected — see TestProtoNegotiationFallback.)
	oldLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer oldLn.Close()
	go func() {
		c, err := oldLn.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		if _, _, err := readFrame(bufio.NewReader(c)); err != nil {
			return
		}
		var e enc
		e.u8(statusOK)
		e.u8(protoVersionMin - 1)
		bw := bufio.NewWriter(c)
		writeFrame(bw, opResp, e.b)
		bw.Flush()
	}()
	if _, err := Dial(ClientConfig{Addr: oldLn.Addr().String()}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("dial against skewed server = %v, want ErrVersionMismatch", err)
	}

	// Pre-versioning-server direction: a server that hangs up on the
	// unknown opHello opcode (exactly what the v1 readLoop did) is
	// reported as a version mismatch, not a generic failure.
	preLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer preLn.Close()
	go func() {
		// Accept in a loop: the client retries the handshake in the
		// older dialect after the first hangup, exactly as it would
		// against a real pre-versioning server that keeps accepting.
		for {
			c, err := preLn.Accept()
			if err != nil {
				return
			}
			readFrame(bufio.NewReader(c)) // see the hello, "unknown opcode"
			c.Close()
		}
	}()
	if _, err := Dial(ClientConfig{Addr: preLn.Addr().String()}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("dial against pre-versioning server = %v, want ErrVersionMismatch", err)
	}
}

// TestErrorTaxonomyRoundTrip pins errors.Is across the wire for every
// taxonomy sentinel a server can emit.
func TestErrorTaxonomyRoundTrip(t *testing.T) {
	_, ants := penStreams(t, 1, 67)
	cfg := sessionCfg(ants, 0.2, 0)
	cfg.MaxSessions = 1
	srv, addr := startServer(t, ServerConfig{Session: cfg})
	client, err := Dial(ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}

	// ErrUnknownEPC (and its deprecated alias).
	if _, err := client.Finalize(ctx, "nobody"); !errors.Is(err, session.ErrUnknownEPC) {
		t.Fatalf("unknown EPC: %v", err)
	}
	if _, err := client.Finalize(ctx, "nobody"); !errors.Is(err, session.ErrUnknownSession) {
		t.Fatalf("unknown EPC via deprecated alias: %v", err)
	}

	// ErrSessionLimit: the cap of 1 rejects a second explicit Open.
	if err := client.Open(ctx, "pen-1", session.OpenOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := client.Open(ctx, "pen-2", session.OpenOptions{}); !errors.Is(err, session.ErrSessionLimit) {
		t.Fatalf("open past cap: %v, want ErrSessionLimit", err)
	}

	// ErrTooFewSamples: finalizing the freshly opened (empty) session.
	if _, err := client.Finalize(ctx, "pen-1"); !errors.Is(err, core.ErrTooFewSamples) {
		t.Fatalf("empty finalize: %v, want ErrTooFewSamples", err)
	}

	// ErrClosed: requests after the manager closed server-side.
	srv.Manager().Close()
	if err := client.Open(ctx, "pen-3", session.OpenOptions{}); !errors.Is(err, session.ErrClosed) {
		t.Fatalf("open after server close: %v, want ErrClosed", err)
	}

	// ErrBackendUnavailable: transport-level failure (server gone).
	srv.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := client.Ping(ctx)
		if errors.Is(err, session.ErrBackendUnavailable) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ping against dead server: %v, want ErrBackendUnavailable", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	client.Close(ctx)
}

// TestOpenOptionsRemoteLocalBitEquivalence is the acceptance test for
// per-session decode options: the same options opened over the wire
// and in process, fed the same stream, must produce bit-identical
// Results — and those results must differ from the backend-default
// decode, proving the options actually took effect remotely.
func TestOpenOptionsRemoteLocalBitEquivalence(t *testing.T) {
	const pens = 3
	samples, ants := penStreams(t, pens, 71)
	perEPC := reader.SplitByEPC(samples)

	// Server/local defaults: unbounded decode. Per-session options pick
	// an aggressively different operating point so the decode visibly
	// changes.
	base := sessionCfg(ants, 0.2, 0)
	topK, lag, window := 48, 8, 0.25
	opts := session.OpenOptions{BeamTopK: &topK, CommitLag: &lag, Window: &window}

	local := session.NewLocalBackend(session.LocalConfig{Session: base})
	localDefault := session.NewLocalBackend(session.LocalConfig{Session: base})
	_, addr := startServer(t, ServerConfig{Session: base})
	client, err := Dial(ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}

	for epc := range perEPC {
		if err := local.Open(ctx, epc, opts); err != nil {
			t.Fatal(err)
		}
		if err := client.Open(ctx, epc, opts); err != nil {
			t.Fatal(err)
		}
		// localDefault gets no Open: backend defaults.
	}
	for _, b := range []session.ShardBackend{local, localDefault, client} {
		if err := b.DispatchBatch(ctx, samples); err != nil {
			t.Fatal(err)
		}
	}

	want, err := local.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantDefault, err := localDefault.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != pens || len(want) != pens {
		t.Fatalf("decoded local=%d remote=%d pens, want %d", len(want), len(got), pens)
	}
	differs := false
	for epc, w := range want {
		g, ok := got[epc]
		if !ok {
			t.Fatalf("remote missing EPC %s", epc)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("EPC %s: remote decode with options diverged from local", epc)
		}
		if !reflect.DeepEqual(w, wantDefault[epc]) {
			differs = true
		}
	}
	if !differs {
		t.Fatal("options changed nothing: default and optioned decodes identical for every pen (test has no teeth)")
	}
}

// TestRemoteSubscribeUnifiedStream checks the v2 event push: a client
// subscription receives the same kinds a local subscription does —
// WindowClose/Point pairs, Commits, Evicts — with per-EPC payloads
// prefix-identical to the server side's own subscription.
func TestRemoteSubscribeUnifiedStream(t *testing.T) {
	const pens = 2
	samples, ants := penStreams(t, pens, 73)

	cfg := sessionCfg(ants, 0.25, 8)
	srv, addr := startServer(t, ServerConfig{Session: cfg})
	client, err := Dial(ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}

	type eventSink struct {
		mu  sync.Mutex
		evs []session.Event
	}
	run := func(ch <-chan session.Event) (*eventSink, chan struct{}) {
		s := &eventSink{}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for ev := range ch {
				s.mu.Lock()
				s.evs = append(s.evs, ev)
				s.mu.Unlock()
			}
		}()
		return s, done
	}
	pensWithPoints := func(s *eventSink) int {
		s.mu.Lock()
		defer s.mu.Unlock()
		seen := map[string]bool{}
		for _, ev := range s.evs {
			if ev.Kind == session.EventPoint {
				seen[ev.EPC] = true
			}
		}
		return len(seen)
	}
	kindCount := func(s *eventSink, k session.EventKind) int {
		s.mu.Lock()
		defer s.mu.Unlock()
		n := 0
		for _, ev := range s.evs {
			if ev.Kind == k {
				n++
			}
		}
		return n
	}

	srvCh, srvCancel := srv.Manager().Subscribe(context.Background())
	srvSink, srvDone := run(srvCh)
	cliCh, cliCancel := client.Subscribe(context.Background())
	cliSink, cliDone := run(cliCh)

	if err := client.DispatchBatch(ctx, samples); err != nil {
		t.Fatal(err)
	}
	if err := client.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Wait for live events (points from every pen, at least one commit
	// — guaranteed eventually by the lag bound) BEFORE closing: the
	// close teardown stops event delivery.
	deadline := time.Now().Add(10 * time.Second)
	for pensWithPoints(cliSink) < pens || kindCount(cliSink, session.EventCommit) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("streaming events incomplete: %d pens with points, %d commits",
				pensWithPoints(cliSink), kindCount(cliSink, session.EventCommit))
		}
		time.Sleep(5 * time.Millisecond)
	}
	// An explicit Finalize makes at least one Evict event observable
	// deterministically (evicts emitted during Close race the client's
	// own teardown).
	probe := samples[0].EPC
	if _, err := client.Finalize(ctx, probe); err != nil {
		t.Fatal(err)
	}
	for kindCount(cliSink, session.EventEvict) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no Evict event after explicit Finalize")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := client.Close(ctx); err != nil {
		t.Fatal(err)
	}
	cliCancel()
	<-cliDone
	srvCancel()
	<-srvDone
	srvEvents, cliEvents := srvSink.evs, cliSink.evs

	// Per EPC and kind, the remote stream must be a prefix of the
	// server-side stream (events racing the close may be cut off; the
	// server sheds at full queues only, and we check that).
	if srv.EventsDropped() > 0 {
		t.Logf("note: %d events shed at the subscriber queue", srv.EventsDropped())
	}
	key := func(ev session.Event) string { return ev.EPC + "/" + ev.Kind.String() }
	srvBy := map[string][]session.Event{}
	for _, ev := range srvEvents {
		srvBy[key(ev)] = append(srvBy[key(ev)], ev)
	}
	cliBy := map[string][]session.Event{}
	kinds := map[session.EventKind]int{}
	for _, ev := range cliEvents {
		cliBy[key(ev)] = append(cliBy[key(ev)], ev)
		kinds[ev.Kind]++
	}
	if kinds[session.EventPoint] == 0 || kinds[session.EventWindowClose] == 0 {
		t.Fatalf("remote stream missing streaming kinds: %v", kinds)
	}
	if kinds[session.EventCommit] == 0 {
		t.Fatalf("remote stream carried no Commit events despite CommitLag: %v", kinds)
	}
	if kinds[session.EventEvict] == 0 {
		t.Fatalf("remote stream carried no Evict events across Close: %v", kinds)
	}
	for k, evs := range cliBy {
		want := srvBy[k]
		if len(evs) > len(want) {
			t.Fatalf("%s: more remote events (%d) than server-side (%d)", k, len(evs), len(want))
		}
		if srv.EventsDropped() > 0 {
			continue // prefix property doesn't survive shedding
		}
		for i, ev := range evs {
			w := want[i]
			// Err values cross the wire as reconstructed sentinels;
			// compare their errors.Is identity, not pointers.
			if (ev.Err == nil) != (w.Err == nil) || (ev.Err != nil && !errors.Is(w.Err, ev.Err) && !errors.Is(ev.Err, w.Err)) {
				t.Fatalf("%s[%d]: err mismatch: %v vs %v", k, i, ev.Err, w.Err)
			}
			ev.Err, w.Err = nil, nil
			// Results cross as separate allocations; compare values.
			if (ev.Result == nil) != (w.Result == nil) {
				t.Fatalf("%s[%d]: result presence mismatch", k, i)
			}
			if ev.Result != nil && !reflect.DeepEqual(ev.Result, w.Result) {
				t.Fatalf("%s[%d]: result payload diverged across the wire", k, i)
			}
			ev.Result, w.Result = nil, nil
			if !reflect.DeepEqual(ev, w) {
				t.Fatalf("%s[%d]: payload diverged:\nremote: %+v\nlocal:  %+v", k, i, ev, w)
			}
		}
	}
}

// TestDeadRemoteDeadline is the acceptance test for context-aware
// remote calls: a Dispatch-then-Finalize against a server that
// accepted the connection (and completed the handshake) but never
// answers must return context.DeadlineExceeded promptly instead of
// hanging until CallTimeout.
func TestDeadRemoteDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				// Answer the handshake correctly, then go silent,
				// swallowing every request like a wedged server.
				br := bufio.NewReader(c)
				if _, _, err := readFrame(br); err != nil {
					return
				}
				var e enc
				e.u8(statusOK)
				e.u8(protoVersion)
				bw := bufio.NewWriter(c)
				writeFrame(bw, opResp, e.b)
				bw.Flush()
				for {
					if _, _, err := readFrame(br); err != nil {
						c.Close()
						return
					}
				}
			}(c)
		}
	}()

	client, err := Dial(ClientConfig{Addr: ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Dispatch(ctx, reader.Sample{EPC: "pen-1"}); err != nil {
		t.Fatal(err) // buffered one-way: must not block
	}

	dctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Finalize(dctx, "pen-1")
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Finalize against silent server = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("Finalize took %v to honour a 150ms deadline", elapsed)
	}

	// The same promptness for a blocked Stats, via cancellation.
	cctx, ccancel := context.WithCancel(context.Background())
	go func() { time.Sleep(50 * time.Millisecond); ccancel() }()
	if _, err := client.Stats(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Stats under cancellation = %v, want context.Canceled", err)
	}
	client.Close(dctx)
}

// TestProtoOpenOptionsRoundTrip checks the options codec over awkward
// values: explicit zeroes stay distinct from absent fields.
func TestProtoOpenOptionsRoundTrip(t *testing.T) {
	zero, k, lag := 0, 192, 64
	adaptive := true
	window, spur := 0.3, 0.15
	cases := []session.OpenOptions{
		{},
		{BeamTopK: &zero},
		{BeamTopK: &k, CommitLag: &lag},
		{BeamTopK: &k, CommitLag: &zero, BeamAdaptive: &adaptive, Window: &window, SpuriousPhase: &spur},
	}
	for i, o := range cases {
		var e enc
		encodeOpenOptions(&e, o)
		d := dec{b: e.b}
		got := decodeOpenOptions(&d)
		if d.err != nil || d.remaining() != 0 {
			t.Fatalf("case %d: err=%v remaining=%d", i, d.err, d.remaining())
		}
		if !reflect.DeepEqual(got, o) {
			t.Fatalf("case %d: round-trip %+v != %+v", i, got, o)
		}
	}
	// Truncations latch an error, never fabricate options.
	full := cases[3]
	var e enc
	encodeOpenOptions(&e, full)
	for cut := 0; cut < len(e.b); cut++ {
		d := dec{b: e.b[:cut]}
		decodeOpenOptions(&d)
		if d.err == nil {
			t.Fatalf("truncation at %d undetected", cut)
		}
	}
}
