package shardrpc

import (
	"testing"

	"polardraw/internal/session"
)

// TestMinStatsWirePinsEncoder ties minStatsWire to encodeStats: the
// client's Stats count sanity check divides by it, so it must track
// the encoder's minimum record size exactly. Growing or shrinking the
// Stats payload without updating the constant fails here instead of
// silently weakening the allocation guard or rejecting valid
// responses.
func TestMinStatsWirePinsEncoder(t *testing.T) {
	var e enc
	if err := encodeStats(&e, session.Stats{}); err != nil {
		t.Fatal(err)
	}
	if len(e.b) != minStatsWire {
		t.Fatalf("minimum encoded Stats record is %d bytes, minStatsWire = %d: update both together",
			len(e.b), minStatsWire)
	}
}
