package shardrpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polardraw/internal/core"
	"polardraw/internal/font"
	"polardraw/internal/geom"
	"polardraw/internal/motion"
	"polardraw/internal/reader"
	"polardraw/internal/rf"
	"polardraw/internal/session"
	"polardraw/internal/tag"
)

// ctx is the background context shared by tests that exercise the
// happy path rather than cancellation (see context-specific tests for
// deadline coverage).
var ctx = context.Background()

// penStreams simulates n pens writing concurrently over one reader
// (mirrors the session package's test helper).
func penStreams(t testing.TB, n int, seed uint64) ([]reader.Sample, [2]rf.Antenna) {
	t.Helper()
	rig := motion.DefaultRig()
	ants := rig.Antennas()
	ch := &rf.Channel{Reflectors: rf.OfficeReflectors(rig.BoardW)}
	tag.AD227(1).ApplyTo(ch)

	letters := []rune{'A', 'C', 'M', 'S', 'Z', 'O', 'W', 'H'}
	scenes := make([]reader.TaggedScene, 0, n)
	for k := 0; k < n; k++ {
		r := letters[k%len(letters)]
		g, ok := font.Lookup(r)
		if !ok {
			t.Fatalf("no glyph %c", r)
		}
		path := g.Path().Scale(0.18).Translate(geom.Vec2{X: 0.18, Y: 0.03})
		sess := motion.Write(path, string(r), motion.Config{Seed: seed + uint64(k)})
		scenes = append(scenes, reader.TaggedScene{EPC: tag.AD227(uint32(k + 1)).EPC, Scene: sess})
	}
	rd := reader.New(reader.Config{Antennas: ants[:], Channel: ch, EPC: "", Seed: seed})
	return rd.MultiInventory(scenes), ants
}

// startServer runs a shard server on a loopback port and returns its
// address plus a cleanup.
func startServer(t testing.TB, cfg ServerConfig) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cfg)
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return srv, ln.Addr().String()
}

func sessionCfg(ants [2]rf.Antenna, window float64, lag int) session.Config {
	return session.Config{
		Tracker: core.Config{Antennas: ants, Window: window, CommitLag: lag},
	}
}

// TestRemoteLocalEquivalence is the acceptance test of the RPC
// boundary: the same mixed multi-pen stream, dispatched through an
// in-process LocalBackend and through a shardrpc client/server pair,
// must produce bit-identical core.Result values per EPC — trajectory,
// windows, correction, counters — both for per-EPC Finalize and for
// the bulk Close path.
func TestRemoteLocalEquivalence(t *testing.T) {
	const pens = 4
	samples, ants := penStreams(t, pens, 31)
	const window, lag = 0.2, 16

	local := session.NewLocalBackend(session.LocalConfig{Session: sessionCfg(ants, window, lag)})
	_, addr := startServer(t, ServerConfig{Session: sessionCfg(ants, window, lag)})
	client, err := Dial(ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}

	if err := local.DispatchBatch(ctx, samples); err != nil {
		t.Fatal(err)
	}
	if err := client.DispatchBatch(ctx, samples); err != nil {
		t.Fatal(err)
	}

	// Finalize one pen explicitly over both transports. The local
	// backend's ingress is asynchronous, so drain it first (Close-less
	// barrier: dispatch order is preserved, so once stats show all
	// samples arrived, Finalize sees the full stream).
	perEPC := reader.SplitByEPC(samples)
	probe := samples[0].EPC
	waitReceived := func(stats func() ([]session.Stats, error)) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, err := stats()
			if err != nil {
				t.Fatal(err)
			}
			var got uint64
			for _, s := range st {
				if s.EPC == probe {
					got = s.Received
				}
			}
			if got == uint64(len(perEPC[probe])) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("probe EPC never fully arrived (%d/%d)", got, len(perEPC[probe]))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitReceived(func() ([]session.Stats, error) { return local.Stats(ctx) })
	waitReceived(func() ([]session.Stats, error) { return client.Stats(ctx) })

	wantProbe, err := local.Finalize(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	gotProbe, err := client.Finalize(ctx, probe)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotProbe, wantProbe) {
		t.Fatalf("remote Finalize diverged from local:\nremote: %+v\nlocal:  %+v", gotProbe, wantProbe)
	}

	// Finalizing an unknown EPC round-trips the sentinel.
	if _, err := client.Finalize(ctx, "no-such-pen"); !errors.Is(err, session.ErrUnknownSession) {
		t.Fatalf("unknown-session error did not round-trip: %v", err)
	}

	// Bulk path: every remaining pen via Close on both transports.
	want, err := local.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != pens-1 || len(got) != pens-1 {
		t.Fatalf("close results: local %d, remote %d, want %d", len(want), len(got), pens-1)
	}
	for epc, w := range want {
		g, ok := got[epc]
		if !ok {
			t.Fatalf("remote close missing EPC %s", epc)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("EPC %s: remote result diverged from local", epc)
		}
	}

	// Terminal client: every later call reports closure.
	if err := client.Dispatch(ctx, samples[0]); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("dispatch after close: %v", err)
	}
	if res, err := client.Close(ctx); res != nil || err != nil {
		t.Fatalf("second close: %v, %v", res, err)
	}
}

// TestRouterOverRemoteShards drives a 2-process-shaped topology in
// one process: two shard servers, two clients, one rendezvous router —
// exactly what `loadgen -shards host:port,host:port` builds — and
// checks sessions land spread across both servers with correct
// merged stats and results.
func TestRouterOverRemoteShards(t *testing.T) {
	const pens = 6
	samples, ants := penStreams(t, pens, 37)

	// Backends get fixed router names (the name is what rendezvous
	// hashes; the address only matters for dialing): with the ephemeral
	// port as the name, the 6-EPC spread below would be one-sided on
	// ~3% of runs purely by hash luck. Fixed names make it
	// deterministic — and deterministically two-sided.
	var nbs []session.NamedBackend
	for i := 0; i < 2; i++ {
		_, addr := startServer(t, ServerConfig{Session: sessionCfg(ants, 0.2, 0)})
		c, err := Dial(ClientConfig{Addr: addr})
		if err != nil {
			t.Fatal(err)
		}
		nbs = append(nbs, session.NamedBackend{Name: fmt.Sprintf("shard-%d", i), Backend: c})
	}
	r := session.NewRouter(nbs)

	if err := r.DispatchBatch(ctx, samples); err != nil {
		t.Fatal(err)
	}
	results, err := r.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != pens {
		t.Fatalf("router close decoded %d pens, want %d", len(results), pens)
	}

	// Both server processes should have hosted at least one pen (6
	// EPCs over 2 rendezvous backends land one-sided with prob ~2^-5).
	perBackend := map[string]int{}
	for epc := range results {
		perBackend[r.BackendFor(epc)]++
	}
	if len(perBackend) != 2 {
		t.Fatalf("all pens landed on one backend: %v", perBackend)
	}

	for _, h := range r.Health() {
		if !h.Healthy || h.Dropped != 0 {
			t.Fatalf("backend %s unhealthy after clean run: %+v", h.Name, h)
		}
	}
}

// pointEvt is one observed OnPoint invocation.
type pointEvt struct {
	w    core.Window
	live geom.Vec2
}

// TestRemoteEvents checks the OnPoint subscription: window-close
// events stream back to the client with the same EPC/window/live
// payload the server-side callback observes, in the same per-EPC
// order. Events racing the Close response may be cut off, so the
// remote view must be a per-EPC prefix of the server-side one.
func TestRemoteEvents(t *testing.T) {
	const pens = 2
	samples, ants := penStreams(t, pens, 41)

	var mu sync.Mutex
	remote := map[string][]pointEvt{}
	srvSide := map[string][]pointEvt{}

	cfg := sessionCfg(ants, 0.25, 0)
	cfg.OnPoint = func(epc string, w core.Window, live geom.Vec2) {
		mu.Lock()
		srvSide[epc] = append(srvSide[epc], pointEvt{w, live})
		mu.Unlock()
	}
	srv, addr := startServer(t, ServerConfig{Session: cfg})
	client, err := Dial(ClientConfig{
		Addr: addr,
		OnPoint: func(epc string, w core.Window, live geom.Vec2) {
			mu.Lock()
			remote[epc] = append(remote[epc], pointEvt{w, live})
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := client.DispatchBatch(ctx, samples); err != nil {
		t.Fatal(err)
	}
	if err := client.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// Wait for live events from every pen while the server decodes,
	// BEFORE closing: the close teardown stops event delivery.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		live := len(remote)
		mu.Unlock()
		if live == pens {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live events from %d pens, want %d", live, pens)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := client.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// After Close returns, both sides are quiescent: the client read
	// loop is down and the server finalized every session.
	mu.Lock()
	defer mu.Unlock()
	if srv.EventsDropped() > 0 {
		t.Logf("note: %d events shed at the subscriber queue", srv.EventsDropped())
	}
	for epc, evs := range remote {
		want := srvSide[epc]
		if len(evs) > len(want) {
			t.Fatalf("EPC %s: more remote events (%d) than server-side (%d)", epc, len(evs), len(want))
		}
		if srv.EventsDropped() == 0 && !reflect.DeepEqual(evs, want[:len(evs)]) {
			t.Fatalf("EPC %s: remote events are not a prefix of server-side events", epc)
		}
	}
}

// TestClientControlCalls covers Ping/Len/EvictIdle/Stats round-trips.
func TestClientControlCalls(t *testing.T) {
	samples, ants := penStreams(t, 3, 43)
	_, addr := startServer(t, ServerConfig{Session: sessionCfg(ants, 0.2, 0)})
	client, err := Dial(ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close(ctx)

	if err := client.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if err := client.DispatchBatch(ctx, samples); err != nil {
		t.Fatal(err)
	}
	if err := client.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		n, err := client.Len(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions = %d, want 3", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 3 {
		t.Fatalf("stats = %d, want 3", len(st))
	}
	for i := 1; i < len(st); i++ {
		if st[i-1].EPC >= st[i].EPC {
			t.Fatalf("stats unsorted: %s >= %s", st[i-1].EPC, st[i].EPC)
		}
	}
	for _, s := range st {
		if s.Received == 0 || s.LastActive.IsZero() {
			t.Fatalf("stats not populated: %+v", s)
		}
	}
	n, err := client.EvictIdle(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("evicted %d, want 3", n)
	}
}

// TestClientConcurrentDispatch hammers one client from many
// goroutines while a stats poller runs — the -race coverage for the
// client's shared connection state.
func TestClientConcurrentDispatch(t *testing.T) {
	samples, ants := penStreams(t, 4, 47)
	perEPC := reader.SplitByEPC(samples)
	_, addr := startServer(t, ServerConfig{Session: sessionCfg(ants, 0.3, 8)})
	client, err := Dial(ClientConfig{Addr: addr, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var stop atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if _, err := client.Stats(ctx); err != nil {
				t.Errorf("stats: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	var dwg sync.WaitGroup
	for epc := range perEPC {
		dwg.Add(1)
		go func(epc string) {
			defer dwg.Done()
			for _, smp := range perEPC[epc] {
				if err := client.Dispatch(ctx, smp); err != nil {
					t.Errorf("dispatch: %v", err)
					return
				}
			}
		}(epc)
	}
	dwg.Wait()
	stop.Store(true)
	wg.Wait()
	results, err := client.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("decoded %d pens, want 4", len(results))
	}
	if client.Lost() != 0 {
		t.Fatalf("lost %d samples on a healthy connection", client.Lost())
	}
}

// TestProtoRoundTrip checks the codec over awkward values.
func TestProtoRoundTrip(t *testing.T) {
	smp := reader.Sample{T: -1.5, Antenna: -1, RSS: -62.25, Phase: 3.14159, EPC: "E280-1160"}
	var e enc
	if err := encodeSamples(&e, []reader.Sample{smp, {}}); err != nil {
		t.Fatal(err)
	}
	d := dec{b: e.b}
	got := decodeSamples(&d)
	if d.err != nil || d.remaining() != 0 {
		t.Fatalf("decode: err=%v remaining=%d", d.err, d.remaining())
	}
	if !reflect.DeepEqual(got, []reader.Sample{smp, {}}) {
		t.Fatalf("samples round-trip: %+v", got)
	}

	res := &core.Result{
		Trajectory: geom.Polyline{{X: 0.1, Y: 0.2}, {X: -0.3, Y: 1e-9}},
		Windows: []core.Window{{
			T: 0.5, RSS: [2]float64{-60, -61.5}, Phase: [2]float64{0.1, 6.2},
			Count: [2]int{3, 4}, Valid: true, Spurious: [2]bool{false, true},
		}},
		Correction:           -0.25,
		RotationalWindows:    7,
		TranslationalWindows: 9,
		SpuriousRejected:     2,
	}
	e = enc{}
	encodeResult(&e, res)
	d = dec{b: e.b}
	gotRes := decodeResult(&d)
	if d.err != nil || d.remaining() != 0 {
		t.Fatalf("result decode: err=%v remaining=%d", d.err, d.remaining())
	}
	if !reflect.DeepEqual(gotRes, res) {
		t.Fatalf("result round-trip:\ngot  %+v\nwant %+v", gotRes, res)
	}

	// Truncations must error, never panic or fabricate data.
	for cut := 0; cut < len(e.b); cut++ {
		d := dec{b: e.b[:cut]}
		decodeResult(&d)
		if d.err == nil && cut < len(e.b) {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

// TestFrameGuards rejects oversized and zero-length frames.
func TestFrameGuards(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go c1.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, _, err := readFrame(c2); err == nil {
		t.Fatal("oversized frame accepted")
	}
	go c1.Write([]byte{0, 0, 0, 0})
	if _, _, err := readFrame(c2); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

// TestServerSurvivesGarbage feeds a raw connection junk and checks the
// server drops it without disturbing a concurrent legitimate client.
func TestServerSurvivesGarbage(t *testing.T) {
	samples, ants := penStreams(t, 2, 53)
	_, addr := startServer(t, ServerConfig{Session: sessionCfg(ants, 0.2, 0)})

	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{0x00, 0x00, 0x00, 0x03, 0x7f, 0xde, 0xad}) // unknown opcode
	raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	// A non-hello first frame is version skew by definition: the server
	// answers with the explicit mismatch error, then hangs up.
	op, payload, err := readFrame(raw)
	if err != nil || op != opResp {
		t.Fatalf("garbage first frame: op=0x%02x err=%v, want an opResp error", op, err)
	}
	d := dec{b: payload}
	if err := checkStatus(&d); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("garbage first frame error = %v, want ErrVersionMismatch", err)
	}
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("server kept a garbage connection open")
	}
	raw.Close()

	client, err := Dial(ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.DispatchBatch(ctx, samples); err != nil {
		t.Fatal(err)
	}
	results, err := client.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("decoded %d pens, want 2", len(results))
	}
}

// TestServerBackpressure: with a blocking session queue, dispatch
// stalls the conn's read loop, not the decode workers — eventually
// everything drains and decodes. (Implicitly covered by large batches
// in other tests; here a tiny queue forces the stall path.)
func TestServerBackpressure(t *testing.T) {
	samples, ants := penStreams(t, 2, 59)
	cfg := sessionCfg(ants, 0.2, 0)
	cfg.QueueSize = 2
	_, addr := startServer(t, ServerConfig{Session: cfg})
	client, err := Dial(ClientConfig{Addr: addr, BatchSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.DispatchBatch(ctx, samples); err != nil {
		t.Fatal(err)
	}
	results, err := client.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("decoded %d pens, want 2", len(results))
	}
	for epc, res := range results {
		if len(res.Trajectory) == 0 {
			t.Fatalf("empty trajectory for %s", epc)
		}
	}
}
