package shardrpc

import (
	"errors"
	"net"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"polardraw/internal/session"
)

// TestMembershipCodecRoundTrip pins the v4 membership wire form:
// epoch, member list (name, addr, state) survive encode/decode
// exactly, oversized tables are rejected at encode time, and hostile
// member counts are rejected before allocation at decode time.
func TestMembershipCodecRoundTrip(t *testing.T) {
	m := session.Membership{
		Epoch: 42,
		Members: []session.Member{
			{Name: "shard-a", Addr: "10.0.0.1:7001", State: session.StateActive},
			{Name: "shard-b", Addr: "10.0.0.2:7001", State: session.StateDraining},
			{Name: "shard-c", Addr: "", State: session.StateSpare},
		},
	}
	var e enc
	if err := encodeMembership(&e, m); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got := decodeMembership(&dec{b: e.b})
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}

	// Oversized tables refuse to encode rather than truncating the u16.
	var big enc
	err := encodeMembership(&big, session.Membership{
		Epoch:   1,
		Members: make([]session.Member, 0x10000),
	})
	if err == nil {
		t.Fatal("encoding 65536 members succeeded, want error")
	}

	// A hostile count with no backing bytes must fail decode, not
	// allocate.
	var h enc
	h.u64(7)
	h.u16(0xffff)
	d := &dec{b: h.b}
	if got := decodeMembership(d); d.err == nil || len(got.Members) != 0 {
		t.Fatalf("hostile count decoded to %+v (err %v), want error", got, d.err)
	}
}

// TestMembershipEventRoundTrip checks EventMembership through the
// unified event codec used for the v4 push.
func TestMembershipEventRoundTrip(t *testing.T) {
	ev := session.Event{
		Kind:  session.EventMembership,
		Epoch: 9,
		Members: []session.Member{
			{Name: "shard-a", Addr: "h:1", State: session.StateActive},
			{Name: "shard-b", Addr: "h:2", State: session.StateDraining},
		},
	}
	var e enc
	if err := encodeEvent(&e, ev); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got := decodeEvent(&dec{b: e.b})
	if !reflect.DeepEqual(got, ev) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ev)
	}
}

// TestV4ErrorCodesRoundTrip extends the error taxonomy check to the
// two sentinels v4 introduces: admission sheds and stale membership
// epochs must survive the wire as errors.Is-able values.
func TestV4ErrorCodesRoundTrip(t *testing.T) {
	for _, sentinel := range []error{session.ErrOverloaded, session.ErrStaleEpoch} {
		var e enc
		encodeError(&e, sentinel)
		d := &dec{b: e.b}
		if st := d.u8(); st != statusErr {
			t.Fatalf("status byte %d, want statusErr", st)
		}
		err := decodeError(d)
		if !errors.Is(err, sentinel) {
			t.Fatalf("decoded %v does not wrap %v", err, sentinel)
		}
	}
}

func waitForMembership(t *testing.T, evs <-chan Event) Event {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-evs:
			if !ok {
				t.Fatal("event stream closed before a membership push arrived")
			}
			if ev.Kind == session.EventMembership {
				return ev
			}
		case <-deadline:
			t.Fatal("timed out waiting for a membership push")
		}
	}
}

// TestMembershipPushStaleAndCatchUp is the v4 e2e: a SetMembership
// from one client fans out to every subscribed client on the same
// shard, stale epochs are rejected with the typed sentinel, and a
// late subscriber catches up with the stored table immediately.
func TestMembershipPushStaleAndCatchUp(t *testing.T) {
	_, ants := penStreams(t, 1, 9)
	srv, addr := startServer(t, ServerConfig{Session: sessionCfg(ants, 0, 0)})

	a, err := Dial(ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Detach()
	b, err := Dial(ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Detach()
	if a.Proto() < 4 {
		t.Fatalf("negotiated v%d, want at least v4", a.Proto())
	}

	evs, cancel := b.Subscribe(ctx)
	defer cancel()

	m1 := session.Membership{
		Epoch: 1,
		Members: []session.Member{
			{Name: "shard-0", Addr: addr, State: session.StateActive},
			{Name: "shard-1", Addr: "10.0.0.2:7001", State: session.StateDraining},
		},
	}
	if err := a.SetMembership(ctx, m1); err != nil {
		t.Fatalf("set membership: %v", err)
	}

	ev := waitForMembership(t, evs)
	if ev.Epoch != 1 || !reflect.DeepEqual(ev.Members, m1.Members) {
		t.Fatalf("pushed membership %+v, want epoch 1 with %+v", ev, m1.Members)
	}
	if got, ok := srv.Membership(); !ok || got.Epoch != 1 {
		t.Fatalf("server stored %+v (ok=%v), want epoch 1", got, ok)
	}

	// Replaying the same epoch — or anything older — is rejected with
	// the typed sentinel and leaves the table untouched.
	if err := a.SetMembership(ctx, m1); !errors.Is(err, session.ErrStaleEpoch) {
		t.Fatalf("stale epoch replay: %v, want ErrStaleEpoch", err)
	}
	if got, _ := srv.Membership(); got.Epoch != 1 {
		t.Fatalf("stale replay moved the epoch to %d", got.Epoch)
	}

	// A client that subscribes after the fact gets the stored table as
	// its first membership event (the v4 subscribe catch-up).
	late, err := Dial(ClientConfig{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer late.Detach()
	lateEvs, lateCancel := late.Subscribe(ctx)
	defer lateCancel()
	if ev := waitForMembership(t, lateEvs); ev.Epoch != 1 || len(ev.Members) != 2 {
		t.Fatalf("late subscriber caught up with %+v, want epoch 1, 2 members", ev)
	}
}

// TestClientRedialBackoffSchedule drives ensureConnLocked with a
// scripted dialer and pins the jittered exponential schedule: the
// base gap doubles per consecutive failure up to the cap, each wait
// is a uniform point in [gap/2, gap], attempts inside the window are
// answered from the cached error without dialing, and one success
// resets the whole ladder.
func TestClientRedialBackoffSchedule(t *testing.T) {
	_, ants := penStreams(t, 1, 7)
	_, addr := startServer(t, ServerConfig{Session: sessionCfg(ants, 0, 0)})

	var down atomic.Bool
	var dials atomic.Int32
	injected := errors.New("injected dial failure")
	cl, err := Dial(ClientConfig{
		Addr:             addr,
		RedialBackoff:    10 * time.Millisecond,
		RedialBackoffMax: 80 * time.Millisecond,
		Dialer: func(a string, timeout time.Duration) (net.Conn, error) {
			dials.Add(1)
			if down.Load() {
				return nil, injected
			}
			return net.DialTimeout("tcp", a, timeout)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Detach()

	down.Store(true)
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.teardownLocked(cl.gen, errors.New("test: connection lost"))

	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for i, w := range want {
		cl.redialAt = time.Time{} // force a real attempt now
		err := cl.ensureConnLocked()
		if err == nil || !errors.Is(err, session.ErrBackendUnavailable) ||
			!strings.Contains(err.Error(), injected.Error()) {
			t.Fatalf("attempt %d: %v, want injected dial failure", i, err)
		}
		if cl.redialWait != w {
			t.Fatalf("attempt %d: backoff gap %v, want %v", i, cl.redialWait, w)
		}
		gap := time.Until(cl.redialAt)
		if gap > w || gap < w/2-2*time.Millisecond {
			t.Fatalf("attempt %d: jittered wait %v outside [%v, %v]", i, gap, w/2, w)
		}
	}

	// Inside the window the cached error comes back without a dial.
	before := dials.Load()
	if err := cl.ensureConnLocked(); err == nil ||
		!strings.Contains(err.Error(), injected.Error()) {
		t.Fatalf("gated attempt: %v, want cached injected failure", err)
	}
	if dials.Load() != before {
		t.Fatalf("attempt inside the backoff window dialed anyway")
	}

	// One success resets the ladder.
	down.Store(false)
	cl.redialAt = time.Time{}
	if err := cl.ensureConnLocked(); err != nil {
		t.Fatalf("recovery dial: %v", err)
	}
	if cl.redialWait != 0 || cl.lastDialErr != nil || !cl.redialAt.IsZero() {
		t.Fatalf("backoff state not reset after success: wait=%v err=%v at=%v",
			cl.redialWait, cl.lastDialErr, cl.redialAt)
	}
}
