// Command loadgen drives many synthetic pens through the PolarDraw
// serving tier and reports sustained throughput and window-close
// latency — the scale harness for the millions-of-users north star.
//
// It is a consumer of the public polardraw client API: the same
// polardraw.Open call serves both topologies. -shards takes either a
// count (in-process shards behind the rendezvous router — the
// single-process deployment) or a comma-separated list of host:port
// shard servers (shardrpc connections behind the same router — the
// multi-process/multi-host deployment, see `polardraw -serve-shard`).
// Progress and outcomes arrive on the unified event stream
// (Client.Subscribe) rather than callbacks.
//
// It synthesizes a handful of letter write sessions once, then replays
// them under fresh EPCs round after round until the duration elapses:
// every pen gets its own session, every round exercises session
// creation, steady-state decode, and LRU eviction. Window-close
// latency is measured per pen as the time from the most recent
// Dispatch to the Point event that a closed window triggers, i.e.
// ingress queue + session queue + decode time + event delivery (+ both
// network hops in remote mode, where the event arrives over the wire).
//
// By default samples are offered as fast as the tier accepts them, so
// the numbers characterize saturation. With -pace, samples replay at
// their true timestamps instead, so latency is measured at a fixed
// offered load — the regime a real deployment runs in.
//
//	go run ./cmd/loadgen -pens 64 -shards 4 -duration 10s
//	go run ./cmd/loadgen -pens 64 -shards 127.0.0.1:7101,127.0.0.1:7102
//	go run ./cmd/loadgen -pens 64 -shards 4 -pace
//
// It doubles as the crash-recovery harness: -kill-pid/-kill-after
// SIGKILLs a shard server process mid-load, and -verify replays one
// round, decodes the same streams with an in-process reference tier,
// and exits non-zero unless the cluster's results are bit-identical to
// the reference with zero lost samples — the durability acceptance
// check (run it with -wal; remote shard servers must use the same
// decode flags as this process for the reference to match).
//
//	go run ./cmd/loadgen -shards 127.0.0.1:7101,127.0.0.1:7102 \
//	    -wal mem -pace -verify -kill-pid $SHARD1_PID -kill-after 2s
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	mrand "math/rand/v2"
	"os"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"polardraw"
	"polardraw/internal/font"
	"polardraw/internal/geom"
	"polardraw/internal/metrics"
	"polardraw/internal/motion"
	"polardraw/internal/reader"
	"polardraw/internal/rf"
	"polardraw/internal/tag"
)

var (
	pens      = flag.Int("pens", 64, "concurrent pens per round")
	duration  = flag.Duration("duration", 10*time.Second, "how long to sustain load")
	pace      = flag.Bool("pace", false, "replay samples at true timestamps (fixed offered load) instead of at saturation")
	killPID   = flag.Int("kill-pid", 0, "SIGKILL this PID after -kill-after (crash-recovery harness)")
	killAfter = flag.Duration("kill-after", 2*time.Second, "delay from load start to the -kill-pid signal")
	verify    = flag.Bool("verify", false, "single round: decode the same streams in process and require bit-identical results and zero lost samples")
	slowSubs  = flag.Int("slow-subscribers", 0, "attach this many deliberately slow event subscribers (each reads one event per 100ms); decode must shed events to them, never stall")
	zipf      = flag.Float64("zipf", 0, "EPC popularity skew: Zipf exponent over pens (0 = uniform; hot pens replay their stream several times per round)")
	churn     = flag.Float64("churn", 0, "session churn: finalize this many random live sessions per second mid-load; their next sample reopens them implicitly (0 = off)")
	latJSON   = flag.String("latency-json", "", "write the latency distribution (p50/p99/p999, throughput) to this file as JSON")
	serve     = polardraw.BindFlags(flag.CommandLine)
)

// penState carries the latency probe for one live session.
type penState struct {
	lastEnq atomic.Int64 // UnixNano of the most recent Dispatch
}

func main() {
	flag.Parse()
	ctx := context.Background()

	// Base streams: a few distinct letters simulated once, replayed
	// under per-pen EPCs. Simulation cost stays out of the timed loop.
	letters := []rune{'A', 'C', 'M', 'S', 'Z', 'O', 'W', 'H'}
	rig := motion.DefaultRig()
	ants := rig.Antennas()
	ch := &rf.Channel{Reflectors: rf.OfficeReflectors(rig.BoardW)}
	tag.AD227(1).ApplyTo(ch)
	base := make([][]reader.Sample, len(letters))
	for i, r := range letters {
		g, ok := font.Lookup(r)
		if !ok {
			panic(fmt.Sprintf("no glyph %c", r))
		}
		path := g.Path().Scale(0.2).Translate(geom.Vec2{X: 0.18, Y: 0.03})
		sess := motion.Write(path, string(r), motion.Config{Seed: uint64(i + 1)})
		rd := reader.New(reader.Config{
			Antennas: ants[:], Channel: ch, EPC: tag.AD227(1).EPC, Seed: uint64(i + 1),
		})
		base[i] = rd.Inventory(sess)
	}

	// One round = every pen's full stream, interleaved in time order
	// as a shared reader would emit it.
	type slot struct {
		pen int
		smp reader.Sample
	}
	var sched []slot
	replicas := zipfReplicas(*pens, *zipf)
	for p := 0; p < *pens; p++ {
		stream := base[p%len(base)]
		span := stream[len(stream)-1].T - stream[0].T
		for rep := 0; rep < replicas[p]; rep++ {
			// Replicas replay back-to-back (a hot pen writing its letter
			// repeatedly), keeping each session's timestamps monotonic.
			shift := float64(rep) * (span + 0.05)
			for _, smp := range stream {
				smp.T += shift
				sched = append(sched, slot{pen: p, smp: smp})
			}
		}
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].smp.T < sched[j].smp.T })
	schedT0 := sched[0].smp.T
	schedDur := sched[len(sched)-1].smp.T - schedT0

	// A saturation run closes windows faster than a small event buffer
	// drains at the default; keep the harness lossless unless the
	// operator explicitly sized the buffer. Likewise the session cap
	// defaults to the pen count (several rounds of pens before LRU
	// eviction) only when -max-sessions was not given — an explicit
	// flag must win.
	eventBufferSet, maxSessionsSet := false, false
	flag.Visit(func(f *flag.Flag) {
		eventBufferSet = eventBufferSet || f.Name == "eventbuffer"
		maxSessionsSet = maxSessionsSet || f.Name == "max-sessions"
	})

	opts, err := serve.Options()
	if err != nil {
		fatal(err)
	}
	opts = append(opts, polardraw.WithAntennas(ants))
	if !maxSessionsSet {
		opts = append(opts, polardraw.WithMaxSessions(*pens))
	}
	if !eventBufferSet {
		opts = append(opts, polardraw.WithEventBuffer(1<<16))
	}
	if serve.Remote() {
		// Probe the shard servers every second so a dead shard shows up
		// in the final health report even if dispatches stop reaching it.
		opts = append(opts, polardraw.WithHeartbeat(time.Second))
	}
	c, err := openRetry(ctx, opts)
	if err != nil {
		fatal(err)
	}
	if *serve.MetricsAddr != "" {
		ms, err := c.ServeMetrics(*serve.MetricsAddr)
		if err != nil {
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		defer ms.Close()
		fmt.Printf("loadgen: metrics at http://%s/metrics\n", ms.Addr())
	}

	// The in-process reference tier for -verify: same antennas, same
	// decode flags, fed the same samples. Remote shard servers must run
	// with matching decode flags or the comparison is meaningless.
	var ref *polardraw.Client
	if *verify {
		refOpts := []polardraw.Option{
			polardraw.WithAntennas(ants),
			polardraw.WithShards(1),
			polardraw.WithMaxSessions(*pens),
			polardraw.WithCommitLag(*serve.Lag),
			polardraw.WithBeamTopK(*serve.TopK),
			polardraw.WithAdaptiveBeam(*serve.Adaptive),
		}
		if *serve.Window != 0 {
			refOpts = append(refOpts, polardraw.WithWindow(*serve.Window))
		}
		if ref, err = polardraw.Open(ctx, refOpts...); err != nil {
			fatal(err)
		}
	}

	var (
		states      sync.Map // epc -> *penState
		windowsDone atomic.Int64
		eventsSeen  atomic.Int64
		latMu       sync.Mutex
		latencies   []float64 // milliseconds
		evictOK     atomic.Int64
		evictErr    atomic.Int64
	)
	const maxLatSamples = 1 << 21

	// The unified event stream replaces the OnPoint/OnEvict callbacks:
	// one subscription observes every pen on every shard, local or
	// remote.
	events, cancelEvents := c.Subscribe(ctx)
	eventsDone := make(chan struct{})
	go func() {
		defer close(eventsDone)
		for ev := range events {
			eventsSeen.Add(1)
			switch ev.Kind {
			case polardraw.EventPoint:
				windowsDone.Add(1)
				if v, ok := states.Load(ev.EPC); ok {
					lat := float64(time.Now().UnixNano()-v.(*penState).lastEnq.Load()) / 1e6
					latMu.Lock()
					if len(latencies) < maxLatSamples {
						latencies = append(latencies, lat)
					}
					latMu.Unlock()
				}
			case polardraw.EventEvict:
				if ev.Err != nil {
					evictErr.Add(1)
				} else {
					evictOK.Add(1)
				}
			}
		}
	}()

	// Slow subscribers model an under-provisioned consumer (a laggy
	// dashboard): each reads one event per 100ms from its own default-
	// sized subscription. The contract under test is shed-don't-stall —
	// they must cost events (EventsDropped), never throughput.
	var slowCancels []polardraw.CancelFunc
	var slowSeen atomic.Int64
	for i := 0; i < *slowSubs; i++ {
		sch, subCancel := c.Subscribe(ctx)
		slowCancels = append(slowCancels, subCancel)
		go func() {
			for range sch {
				slowSeen.Add(1)
				time.Sleep(100 * time.Millisecond)
			}
		}()
	}

	// Churn forces the session-lifecycle path under load: a ticker
	// finalizes random live sessions; the next sample for a churned EPC
	// reopens it implicitly (inheriting the client's decode defaults —
	// the v5 hello push in remote mode). Incompatible with -verify,
	// which requires every session live at close.
	var churned atomic.Int64
	var curRound atomic.Int64
	churnCtx, stopChurn := context.WithCancel(ctx)
	defer stopChurn()
	if *churn > 0 {
		if *verify {
			fatal(errors.New("-churn is incompatible with -verify (churned sessions finalize early)"))
		}
		go func() {
			rng := mrand.New(mrand.NewPCG(0x70617065, 0x72647277))
			tick := time.NewTicker(time.Duration(float64(time.Second) / *churn))
			defer tick.Stop()
			for {
				select {
				case <-churnCtx.Done():
					return
				case <-tick.C:
					epc := fmt.Sprintf("pen-%04d-%06d", rng.IntN(*pens), curRound.Load())
					if _, err := c.Finalize(churnCtx, epc); err == nil {
						churned.Add(1)
					}
				}
			}
		}()
	}

	// Decode settings are printed only for the topology they govern:
	// remote shards decode with their servers' configuration (set on
	// `polardraw -serve-shard`), not with this process's flags.
	if serve.Remote() {
		fmt.Printf("loadgen: pens=%d pace=%v remote shards=%v (decode config is the servers')\n",
			*pens, *pace, c.Backends())
	} else {
		fmt.Printf("loadgen: pens=%d pace=%v local shards=%s window=%g lag=%d topk=%d adaptive=%v queue=%d drop=%v\n",
			*pens, *pace, *serve.Shards, *serve.Window, *serve.Lag, *serve.TopK, *serve.Adaptive, *serve.Queue, *serve.Drop)
	}
	if *pace {
		offered := float64(len(sched)) / schedDur
		fmt.Printf("offered load: %.0f samples/s (%d samples per %.2fs round)\n",
			offered, len(sched), schedDur)
	}

	deadline := time.Now().Add(*duration)
	start := time.Now()
	if *killPID != 0 {
		time.AfterFunc(*killAfter, func() {
			fmt.Printf("loadgen: SIGKILL pid %d (%.1fs into the load)\n", *killPID, time.Since(start).Seconds())
			if err := syscall.Kill(*killPID, syscall.SIGKILL); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: kill %d: %v\n", *killPID, err)
			}
		})
	}
	dispatched := int64(0)
	dispatchErrs := int64(0)
	shed := int64(0)
	rounds := 0
	for rounds == 0 || time.Now().Before(deadline) {
		curRound.Store(int64(rounds))
		for p := 0; p < *pens; p++ {
			epc := fmt.Sprintf("pen-%04d-%06d", p, rounds)
			states.Store(epc, &penState{})
		}
		roundStart := time.Now()
		for _, sl := range sched {
			if *pace {
				target := roundStart.Add(time.Duration((sl.smp.T - schedT0) * float64(time.Second)))
				if d := time.Until(target); d > 0 {
					time.Sleep(d)
				}
			}
			epc := fmt.Sprintf("pen-%04d-%06d", sl.pen, rounds)
			smp := sl.smp
			smp.EPC = epc
			if v, ok := states.Load(epc); ok {
				v.(*penState).lastEnq.Store(time.Now().UnixNano())
			}
			if err := c.Dispatch(ctx, smp); err != nil {
				if errors.Is(err, polardraw.ErrOverloaded) {
					// Admission shed: by design under -admit-rate /
					// -admit-inflight. The sample never entered the
					// tier, so the reference must not see it either.
					shed++
					continue
				}
				// With a WAL the journal holds every sample the tier
				// accepted for routing: a dispatch error during an
				// outage is a delay (failover replays it), not a loss.
				if *serve.WAL == "" {
					panic(err)
				}
				dispatchErrs++
			}
			if ref != nil {
				if err := ref.Dispatch(ctx, smp); err != nil {
					panic(err)
				}
			}
			dispatched++
		}
		rounds++
		if *verify {
			break // one deterministic round; every session live at close
		}
		if time.Since(start) > 10*(*duration) {
			break // safety valve: a single round took far too long
		}
	}
	if *verify && *killPID != 0 {
		waitRecovery(c, rounds)
	}
	// Decode telemetry snapshot over the sessions still live (evicted
	// ones carried their counters out with them): how sparse the beam
	// ran, how the lag smoother committed, and how the shared stencil
	// cache served the tier.
	var decodeLine string
	if sts, err := c.Stats(ctx); err == nil {
		var activeMean, occupancy float64
		var merged, forced int
		var sHits, sMisses uint64
		n := 0
		for _, st := range sts {
			if st.Decode.Steps == 0 {
				continue
			}
			n++
			activeMean += st.Decode.ActiveMean
			occupancy += st.Decode.Occupancy
			merged += st.Decode.MergeCommits
			forced += st.Decode.ForcedCommits
			sHits += st.Decode.StencilHits
			sMisses += st.Decode.StencilMisses
		}
		if n > 0 {
			decodeLine = fmt.Sprintf(
				"decode (%d live sessions): mean active %.0f cells (%.2f%% of grid), commits merged=%d forced=%d, stencil hit rate %.1f%%",
				n, activeMean/float64(n), occupancy/float64(n)*100, merged, forced,
				hitRate(sHits, sMisses))
		}
	}
	stopChurn()
	results, err := c.Close(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: close: %v\n", err)
	}
	elapsed := time.Since(start)
	// Drain the stream so every Evict emitted by Close is counted.
	cancelEvents()
	<-eventsDone
	for _, cancel := range slowCancels {
		cancel()
	}

	wins := windowsDone.Load()
	fmt.Printf("rounds=%d sessions=%d (%d still live and finalized at close)\n",
		rounds, rounds*(*pens), len(results))
	fmt.Printf("dispatched %d samples in %.2fs: %.0f samples/s\n",
		dispatched, elapsed.Seconds(), float64(dispatched)/elapsed.Seconds())
	fmt.Printf("windows closed: %d (%.0f windows/s)\n",
		wins, float64(wins)/elapsed.Seconds())
	latMu.Lock()
	p50 := metrics.Percentile(latencies, 50)
	p99 := metrics.Percentile(latencies, 99)
	p999 := metrics.Percentile(latencies, 99.9)
	n := len(latencies)
	latMu.Unlock()
	fmt.Printf("window-close latency (n=%d): p50=%.3fms p99=%.3fms p999=%.3fms\n", n, p50, p99, p999)
	if decodeLine != "" {
		fmt.Println(decodeLine)
	}
	fmt.Printf("finalized: %d ok, %d too-short\n", evictOK.Load(), evictErr.Load())
	if hits, misses, ok := c.StencilCacheStats(); ok {
		fmt.Printf("stencil cache (grid-wide): hits=%d misses=%d (%.1f%% hit rate)\n",
			hits, misses, hitRate(hits, misses))
		fmt.Printf("ingress dropped: %d\n", c.IngressDropped())
	} else {
		healthy, unhealthy := c.HealthCounts()
		fmt.Printf("backends: %d healthy, %d unhealthy; samples lost to transport: %d\n",
			healthy, unhealthy, c.SamplesLost())
		for _, h := range c.Health() {
			fmt.Printf("backend %s: dispatched=%d dropped=%d shed=%d errors=%d pings=%d pingfails=%d healthy=%v\n",
				h.Name, h.Dispatched, h.Dropped, h.Shed, h.Errors, h.Pings, h.PingFails, h.Healthy)
		}
	}
	if dispatchErrs > 0 {
		fmt.Printf("dispatch errors tolerated under WAL: %d\n", dispatchErrs)
	}
	fmt.Printf("admission shed: %d samples refused with ErrOverloaded (router counter: %d)\n",
		shed, c.SamplesShed())
	fmt.Printf("subscriber events: %d delivered (%.0f events/s)\n",
		eventsSeen.Load(), float64(eventsSeen.Load())/elapsed.Seconds())
	if *churn > 0 {
		fmt.Printf("churn: %d sessions finalized mid-load and reopened on their next sample\n", churned.Load())
	}
	if *slowSubs > 0 {
		fmt.Printf("slow subscribers: %d consumers read %d events; %d events shed at full buffers (decode never stalled)\n",
			*slowSubs, slowSeen.Load(), c.EventsDropped())
	}
	if *latJSON != "" {
		if err := writeLatencyJSON(*latJSON, n, p50, p99, p999,
			float64(dispatched)/elapsed.Seconds(), float64(wins)/elapsed.Seconds(), *pace); err != nil {
			fatal(err)
		}
		fmt.Printf("latency distribution written to %s\n", *latJSON)
	}
	if *verify {
		verifyAgainst(ctx, ref, c, results)
	}
}

// writeLatencyJSON publishes the run's latency distribution for the CI
// perf-trajectory artifact (LATENCY_PR<n>.json next to BENCH_PR<n>.json).
func writeLatencyJSON(path string, n int, p50, p99, p999, samplesPerSec, windowsPerSec float64, paced bool) error {
	finite := func(x float64) float64 { // an idle run has no percentiles
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return x
	}
	out := struct {
		N             int     `json:"n"`
		P50ms         float64 `json:"p50_ms"`
		P99ms         float64 `json:"p99_ms"`
		P999ms        float64 `json:"p999_ms"`
		SamplesPerSec float64 `json:"samples_per_sec"`
		WindowsPerSec float64 `json:"windows_per_sec"`
		Paced         bool    `json:"paced"`
	}{n, finite(p50), finite(p99), finite(p999), finite(samplesPerSec), finite(windowsPerSec), paced}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("latency-json: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("latency-json: %w", err)
	}
	return nil
}

// zipfReplicas maps the -zipf exponent to per-pen stream replica
// counts: pen p carries weight (p+1)^-s, scaled so the total replica
// count stays near the pen count. Every pen keeps at least one copy —
// the skew concentrates volume on hot pens without starving the tail.
func zipfReplicas(pens int, s float64) []int {
	out := make([]int, pens)
	for p := range out {
		out[p] = 1
	}
	if s <= 0 || pens == 0 {
		return out
	}
	weights := make([]float64, pens)
	var sum float64
	for p := range weights {
		weights[p] = math.Pow(float64(p+1), -s)
		sum += weights[p]
	}
	for p := range out {
		if n := int(math.Round(weights[p] / sum * float64(pens))); n > 1 {
			out[p] = n
		}
	}
	return out
}

// verifyAgainst closes the reference tier and requires the cluster's
// results to be bit-identical to it with zero lost samples, exiting
// non-zero on any divergence.
func verifyAgainst(ctx context.Context, ref *polardraw.Client, c *polardraw.Client, got map[string]*polardraw.Result) {
	want, err := ref.Close(ctx)
	if err != nil {
		fatal(fmt.Errorf("verify: reference close: %w", err))
	}
	bad := 0
	for epc, w := range want {
		g, ok := got[epc]
		if !ok {
			fmt.Fprintf(os.Stderr, "verify: %s decoded by the reference but missing from the cluster\n", epc)
			bad++
			continue
		}
		if !reflect.DeepEqual(g, w) {
			fmt.Fprintf(os.Stderr, "verify: %s diverged from the reference decode (%d vs %d trajectory points)\n",
				epc, len(g.Trajectory), len(w.Trajectory))
			bad++
		}
	}
	for epc := range got {
		if _, ok := want[epc]; !ok {
			fmt.Fprintf(os.Stderr, "verify: %s decoded by the cluster but not the reference\n", epc)
			bad++
		}
	}
	if lost := c.SamplesLost(); lost > 0 {
		fmt.Fprintf(os.Stderr, "verify: %d samples lost\n", lost)
		bad++
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "verify: FAILED (%d problems)\n", bad)
		os.Exit(1)
	}
	fmt.Printf("verify: OK — %d trajectories bit-identical to the reference, 0 samples lost\n", len(want))
}

// waitRecovery blocks until every pen of the final round routes to a
// healthy backend (failover migrations pinned), so Close doesn't race
// an in-flight migration after a kill.
func waitRecovery(c *polardraw.Client, rounds int) {
	deadline := time.Now().Add(45 * time.Second)
	for {
		healthy := map[string]bool{}
		for _, h := range c.Health() {
			if h.Healthy {
				healthy[h.Name] = true
			}
		}
		settled := len(healthy) > 0
		for p := 0; settled && p < *pens; p++ {
			epc := fmt.Sprintf("pen-%04d-%06d", p, rounds-1)
			settled = healthy[c.BackendFor(epc)]
		}
		if settled {
			fmt.Println("loadgen: cluster recovered; every pen routed to a healthy shard")
			return
		}
		if time.Now().After(deadline) {
			fmt.Fprintln(os.Stderr, "loadgen: recovery did not converge within 45s")
			os.Exit(1)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// hitRate returns hits/(hits+misses) as a percentage, 0 when idle.
func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses) * 100
}

// openRetry opens the client, retrying while remote shard servers
// start up (the CI smoke launches servers and loadgen together).
func openRetry(ctx context.Context, opts []polardraw.Option) (*polardraw.Client, error) {
	var lastErr error
	for i := 0; i < 20; i++ {
		c, err := polardraw.Open(ctx, opts...)
		if err == nil {
			return c, nil
		}
		if !errors.Is(err, polardraw.ErrBackendUnavailable) {
			return nil, err
		}
		lastErr = err
		time.Sleep(250 * time.Millisecond)
	}
	return nil, lastErr
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
