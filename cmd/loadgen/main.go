// Command loadgen drives many synthetic pens through the sharded
// session server as fast as the hardware allows and reports sustained
// throughput and window-close latency — the scale harness for the
// millions-of-users north star.
//
// It synthesizes a handful of letter write sessions once, then replays
// them under fresh EPCs round after round until the duration elapses:
// every pen gets its own session, every round exercises session
// creation, steady-state decode, and LRU eviction. Window-close
// latency is measured per pen as the time from the most recent
// Dispatch to the OnPoint callback that a closed window triggers, i.e.
// ingress queue + session queue + decode time.
//
//	go run ./cmd/loadgen -pens 64 -shards 4 -duration 10s
package main

import (
	"flag"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"polardraw/internal/core"
	"polardraw/internal/font"
	"polardraw/internal/geom"
	"polardraw/internal/metrics"
	"polardraw/internal/motion"
	"polardraw/internal/reader"
	"polardraw/internal/rf"
	"polardraw/internal/session"
	"polardraw/internal/tag"
)

var (
	pens       = flag.Int("pens", 64, "concurrent pens per round")
	shards     = flag.Int("shards", 4, "session shards")
	duration   = flag.Duration("duration", 10*time.Second, "how long to sustain load")
	window     = flag.Float64("window", 0.05, "tracker window, seconds")
	lag        = flag.Int("lag", 32, "CommitLag in windows (0 = unbounded decoder memory)")
	queue      = flag.Int("queue", session.DefaultQueueSize, "per-session queue size")
	shardQueue = flag.Int("shardqueue", session.DefaultShardQueue, "per-shard ingress queue size")
	drop       = flag.Bool("drop", false, "drop samples at full queues instead of blocking")
)

// penState carries the latency probe for one live session.
type penState struct {
	lastEnq atomic.Int64 // UnixNano of the most recent Dispatch
}

func main() {
	flag.Parse()

	// Base streams: a few distinct letters simulated once, replayed
	// under per-pen EPCs. Simulation cost stays out of the timed loop.
	letters := []rune{'A', 'C', 'M', 'S', 'Z', 'O', 'W', 'H'}
	rig := motion.DefaultRig()
	ants := rig.Antennas()
	ch := &rf.Channel{Reflectors: rf.OfficeReflectors(rig.BoardW)}
	tag.AD227(1).ApplyTo(ch)
	base := make([][]reader.Sample, len(letters))
	for i, r := range letters {
		g, ok := font.Lookup(r)
		if !ok {
			panic(fmt.Sprintf("no glyph %c", r))
		}
		path := g.Path().Scale(0.2).Translate(geom.Vec2{X: 0.18, Y: 0.03})
		sess := motion.Write(path, string(r), motion.Config{Seed: uint64(i + 1)})
		rd := reader.New(reader.Config{
			Antennas: ants[:], Channel: ch, EPC: tag.AD227(1).EPC, Seed: uint64(i + 1),
		})
		base[i] = rd.Inventory(sess)
	}

	// One round = every pen's full stream, interleaved in time order
	// as a shared reader would emit it.
	type slot struct {
		pen int
		smp reader.Sample
	}
	var sched []slot
	for p := 0; p < *pens; p++ {
		for _, smp := range base[p%len(base)] {
			sched = append(sched, slot{pen: p, smp: smp})
		}
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].smp.T < sched[j].smp.T })

	var (
		states      sync.Map // epc -> *penState
		windowsDone atomic.Int64
		latMu       sync.Mutex
		latencies   []float64 // milliseconds
		evictOK     atomic.Int64
		evictErr    atomic.Int64
	)
	const maxLatSamples = 1 << 21
	sm := session.NewShardedManager(session.ShardedConfig{
		Session: session.Config{
			Tracker: core.Config{
				Antennas:  ants,
				Window:    *window,
				CommitLag: *lag,
			},
			QueueSize:    *queue,
			MaxSessions:  *pens, // per shard: several rounds of pens before LRU eviction
			DropWhenFull: *drop,
			OnPoint: func(epc string, _ core.Window, _ geom.Vec2) {
				windowsDone.Add(1)
				if v, ok := states.Load(epc); ok {
					lat := float64(time.Now().UnixNano()-v.(*penState).lastEnq.Load()) / 1e6
					latMu.Lock()
					if len(latencies) < maxLatSamples {
						latencies = append(latencies, lat)
					}
					latMu.Unlock()
				}
			},
			OnEvict: func(_ string, res *core.Result, err error) {
				if err != nil {
					evictErr.Add(1)
				} else {
					evictOK.Add(1)
				}
			},
		},
		Shards:       *shards,
		QueueSize:    *shardQueue,
		DropWhenFull: *drop,
	})

	fmt.Printf("loadgen: pens=%d shards=%d window=%gs lag=%d queue=%d shardqueue=%d drop=%v\n",
		*pens, *shards, *window, *lag, *queue, *shardQueue, *drop)

	deadline := time.Now().Add(*duration)
	start := time.Now()
	dispatched := int64(0)
	rounds := 0
	for rounds == 0 || time.Now().Before(deadline) {
		for p := 0; p < *pens; p++ {
			epc := fmt.Sprintf("pen-%04d-%06d", p, rounds)
			states.Store(epc, &penState{})
		}
		for _, sl := range sched {
			epc := fmt.Sprintf("pen-%04d-%06d", sl.pen, rounds)
			smp := sl.smp
			smp.EPC = epc
			if v, ok := states.Load(epc); ok {
				v.(*penState).lastEnq.Store(time.Now().UnixNano())
			}
			if err := sm.Dispatch(smp); err != nil {
				panic(err)
			}
			dispatched++
		}
		rounds++
		if time.Since(start) > 10*(*duration) {
			break // safety valve: a single round took far too long
		}
	}
	results := sm.Close()
	elapsed := time.Since(start)

	wins := windowsDone.Load()
	fmt.Printf("rounds=%d sessions=%d (%d still live and finalized at close)\n",
		rounds, rounds*(*pens), len(results))
	fmt.Printf("dispatched %d samples in %.2fs: %.0f samples/s\n",
		dispatched, elapsed.Seconds(), float64(dispatched)/elapsed.Seconds())
	fmt.Printf("windows closed: %d (%.0f windows/s)\n",
		wins, float64(wins)/elapsed.Seconds())
	latMu.Lock()
	p50 := metrics.Percentile(latencies, 50)
	p99 := metrics.Percentile(latencies, 99)
	n := len(latencies)
	latMu.Unlock()
	fmt.Printf("window-close latency (n=%d): p50=%.3fms p99=%.3fms\n", n, p50, p99)
	fmt.Printf("finalized: %d ok, %d too-short; ingress dropped: %d\n",
		evictOK.Load(), evictErr.Load(), sm.IngressDropped())
}
