// Command loadgen drives many synthetic pens through the sharded
// session tier and reports sustained throughput and window-close
// latency — the scale harness for the millions-of-users north star.
//
// The shard tier behind it is pluggable: -shards takes either a count
// (in-process LocalBackends behind the rendezvous router — the
// single-process deployment) or a comma-separated list of host:port
// shard servers (shardrpc clients behind the same router — the
// multi-process/multi-host deployment, see `polardraw -serve-shard`).
//
// It synthesizes a handful of letter write sessions once, then replays
// them under fresh EPCs round after round until the duration elapses:
// every pen gets its own session, every round exercises session
// creation, steady-state decode, and LRU eviction. Window-close
// latency is measured per pen as the time from the most recent
// Dispatch to the OnPoint callback that a closed window triggers, i.e.
// ingress queue + session queue + decode time (+ both network hops in
// remote mode, where the event arrives over the wire).
//
// By default samples are offered as fast as the tier accepts them, so
// the numbers characterize saturation. With -pace, samples replay at
// their true timestamps instead, so latency is measured at a fixed
// offered load — the regime a real deployment runs in.
//
//	go run ./cmd/loadgen -pens 64 -shards 4 -duration 10s
//	go run ./cmd/loadgen -pens 64 -shards 127.0.0.1:7101,127.0.0.1:7102
//	go run ./cmd/loadgen -pens 64 -shards 4 -pace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polardraw/internal/core"
	"polardraw/internal/font"
	"polardraw/internal/geom"
	"polardraw/internal/metrics"
	"polardraw/internal/motion"
	"polardraw/internal/reader"
	"polardraw/internal/rf"
	"polardraw/internal/session"
	"polardraw/internal/shardrpc"
	"polardraw/internal/tag"
)

var (
	pens       = flag.Int("pens", 64, "concurrent pens per round")
	shards     = flag.String("shards", "4", "in-process shard count, or comma-separated host:port shard servers")
	duration   = flag.Duration("duration", 10*time.Second, "how long to sustain load")
	window     = flag.Float64("window", 0.05, "tracker window, seconds (local shards only)")
	lag        = flag.Int("lag", core.DefaultCommitLag, "CommitLag in windows, 0 = unbounded decoder memory (local shards only)")
	topk       = flag.Int("topk", core.DefaultBeamTopK, "BeamTopK decoder count bound, 0 = window-only beam pruning (local shards only)")
	adaptive   = flag.Bool("adaptive-beam", false, "enable the adaptive top-K controller (local shards only; requires -topk > 0)")
	queue      = flag.Int("queue", session.DefaultQueueSize, "per-session queue size (local shards only)")
	shardQueue = flag.Int("shardqueue", session.DefaultShardQueue, "per-shard ingress queue size (local shards only)")
	drop       = flag.Bool("drop", false, "drop samples at full queues instead of blocking (local shards only)")
	pace       = flag.Bool("pace", false, "replay samples at true timestamps (fixed offered load) instead of at saturation")
)

// penState carries the latency probe for one live session.
type penState struct {
	lastEnq atomic.Int64 // UnixNano of the most recent Dispatch
}

func main() {
	flag.Parse()

	// Base streams: a few distinct letters simulated once, replayed
	// under per-pen EPCs. Simulation cost stays out of the timed loop.
	letters := []rune{'A', 'C', 'M', 'S', 'Z', 'O', 'W', 'H'}
	rig := motion.DefaultRig()
	ants := rig.Antennas()
	ch := &rf.Channel{Reflectors: rf.OfficeReflectors(rig.BoardW)}
	tag.AD227(1).ApplyTo(ch)
	base := make([][]reader.Sample, len(letters))
	for i, r := range letters {
		g, ok := font.Lookup(r)
		if !ok {
			panic(fmt.Sprintf("no glyph %c", r))
		}
		path := g.Path().Scale(0.2).Translate(geom.Vec2{X: 0.18, Y: 0.03})
		sess := motion.Write(path, string(r), motion.Config{Seed: uint64(i + 1)})
		rd := reader.New(reader.Config{
			Antennas: ants[:], Channel: ch, EPC: tag.AD227(1).EPC, Seed: uint64(i + 1),
		})
		base[i] = rd.Inventory(sess)
	}

	// One round = every pen's full stream, interleaved in time order
	// as a shared reader would emit it.
	type slot struct {
		pen int
		smp reader.Sample
	}
	var sched []slot
	for p := 0; p < *pens; p++ {
		for _, smp := range base[p%len(base)] {
			sched = append(sched, slot{pen: p, smp: smp})
		}
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].smp.T < sched[j].smp.T })
	schedT0 := sched[0].smp.T
	schedDur := sched[len(sched)-1].smp.T - schedT0

	var (
		states      sync.Map // epc -> *penState
		windowsDone atomic.Int64
		latMu       sync.Mutex
		latencies   []float64 // milliseconds
		evictOK     atomic.Int64
		evictErr    atomic.Int64
	)
	const maxLatSamples = 1 << 21
	// onPoint is shared by every shard worker (local mode) or client
	// read loop (remote mode) — all state it touches is atomic or
	// mutex-guarded, per the session.Config concurrency contract.
	onPoint := func(epc string, _ core.Window, _ geom.Vec2) {
		windowsDone.Add(1)
		if v, ok := states.Load(epc); ok {
			lat := float64(time.Now().UnixNano()-v.(*penState).lastEnq.Load()) / 1e6
			latMu.Lock()
			if len(latencies) < maxLatSamples {
				latencies = append(latencies, lat)
			}
			latMu.Unlock()
		}
	}

	var (
		backend  session.ShardBackend
		router   *session.Router // remote mode only
		localSM  *session.ShardedManager
		topology string
	)
	if n, err := strconv.Atoi(*shards); err == nil {
		// Local mode: N in-process shards behind the rendezvous router.
		localSM = session.NewShardedManager(session.ShardedConfig{
			Session: session.Config{
				Tracker: core.Config{
					Antennas:     ants,
					Window:       *window,
					CommitLag:    *lag,
					BeamTopK:     *topk,
					BeamAdaptive: *adaptive,
				},
				QueueSize:    *queue,
				MaxSessions:  *pens, // per shard: several rounds of pens before LRU eviction
				DropWhenFull: *drop,
				OnPoint:      onPoint,
				OnEvict: func(_ string, res *core.Result, err error) {
					if err != nil {
						evictErr.Add(1)
					} else {
						evictOK.Add(1)
					}
				},
			},
			Shards:       n,
			QueueSize:    *shardQueue,
			DropWhenFull: *drop,
		})
		backend = localSM
		topology = fmt.Sprintf("local shards=%d window=%gs lag=%d topk=%d adaptive=%v queue=%d shardqueue=%d drop=%v",
			n, *window, *lag, *topk, *adaptive, *queue, *shardQueue, *drop)
	} else {
		// Remote mode: one shardrpc client per shard server, behind the
		// same router. Tracker configuration (window, lag, queues) is
		// the server's: set it on `polardraw -serve-shard`.
		addrs := strings.Split(*shards, ",")
		nbs := make([]session.NamedBackend, 0, len(addrs))
		for _, addr := range addrs {
			addr = strings.TrimSpace(addr)
			c, err := dialRetry(addr, onPoint)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				os.Exit(1)
			}
			nbs = append(nbs, session.NamedBackend{Name: addr, Backend: c})
		}
		router = session.NewRouter(nbs)
		// Probe the shard servers every second so a dead shard shows up
		// in the final health report even if dispatches stop reaching it.
		router.StartHeartbeat(time.Second)
		backend = router
		topology = fmt.Sprintf("remote shards=%v", router.Backends())
	}

	fmt.Printf("loadgen: pens=%d pace=%v %s\n", *pens, *pace, topology)
	if *pace {
		offered := float64(len(sched)) / schedDur
		fmt.Printf("offered load: %.0f samples/s (%d samples per %.2fs round)\n",
			offered, len(sched), schedDur)
	}

	deadline := time.Now().Add(*duration)
	start := time.Now()
	dispatched := int64(0)
	rounds := 0
	for rounds == 0 || time.Now().Before(deadline) {
		for p := 0; p < *pens; p++ {
			epc := fmt.Sprintf("pen-%04d-%06d", p, rounds)
			states.Store(epc, &penState{})
		}
		roundStart := time.Now()
		for _, sl := range sched {
			if *pace {
				target := roundStart.Add(time.Duration((sl.smp.T - schedT0) * float64(time.Second)))
				if d := time.Until(target); d > 0 {
					time.Sleep(d)
				}
			}
			epc := fmt.Sprintf("pen-%04d-%06d", sl.pen, rounds)
			smp := sl.smp
			smp.EPC = epc
			if v, ok := states.Load(epc); ok {
				v.(*penState).lastEnq.Store(time.Now().UnixNano())
			}
			if err := backend.Dispatch(smp); err != nil {
				panic(err)
			}
			dispatched++
		}
		rounds++
		if time.Since(start) > 10*(*duration) {
			break // safety valve: a single round took far too long
		}
	}
	// Decode telemetry snapshot over the sessions still live (evicted
	// ones carried their counters out with them): how sparse the beam
	// ran, how the lag smoother committed, and how the shared stencil
	// cache served the tier.
	var decodeLine string
	if sts, err := backend.Stats(); err == nil {
		var activeMean, occupancy float64
		var merged, forced int
		var sHits, sMisses uint64
		n := 0
		for _, st := range sts {
			if st.Decode.Steps == 0 {
				continue
			}
			n++
			activeMean += st.Decode.ActiveMean
			occupancy += st.Decode.Occupancy
			merged += st.Decode.MergeCommits
			forced += st.Decode.ForcedCommits
			sHits += st.Decode.StencilHits
			sMisses += st.Decode.StencilMisses
		}
		if n > 0 {
			decodeLine = fmt.Sprintf(
				"decode (%d live sessions): mean active %.0f cells (%.2f%% of grid), commits merged=%d forced=%d, stencil hit rate %.1f%%",
				n, activeMean/float64(n), occupancy/float64(n)*100, merged, forced,
				hitRate(sHits, sMisses))
		}
	}
	results, err := backend.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: close: %v\n", err)
	}
	elapsed := time.Since(start)

	wins := windowsDone.Load()
	fmt.Printf("rounds=%d sessions=%d (%d still live and finalized at close)\n",
		rounds, rounds*(*pens), len(results))
	fmt.Printf("dispatched %d samples in %.2fs: %.0f samples/s\n",
		dispatched, elapsed.Seconds(), float64(dispatched)/elapsed.Seconds())
	fmt.Printf("windows closed: %d (%.0f windows/s)\n",
		wins, float64(wins)/elapsed.Seconds())
	latMu.Lock()
	p50 := metrics.Percentile(latencies, 50)
	p99 := metrics.Percentile(latencies, 99)
	n := len(latencies)
	latMu.Unlock()
	fmt.Printf("window-close latency (n=%d): p50=%.3fms p99=%.3fms\n", n, p50, p99)
	if decodeLine != "" {
		fmt.Println(decodeLine)
	}
	if localSM != nil {
		hits, misses := localSM.Tracker().StencilCacheStats()
		fmt.Printf("stencil cache (grid-wide): hits=%d misses=%d (%.1f%% hit rate)\n",
			hits, misses, hitRate(hits, misses))
		fmt.Printf("finalized: %d ok, %d too-short; ingress dropped: %d\n",
			evictOK.Load(), evictErr.Load(), localSM.IngressDropped())
	} else {
		healthy, unhealthy := router.HealthCounts()
		fmt.Printf("backends: %d healthy, %d unhealthy\n", healthy, unhealthy)
		for _, h := range router.Health() {
			fmt.Printf("backend %s: dispatched=%d dropped=%d errors=%d pings=%d pingfails=%d healthy=%v\n",
				h.Name, h.Dispatched, h.Dropped, h.Errors, h.Pings, h.PingFails, h.Healthy)
		}
	}
}

// hitRate returns hits/(hits+misses) as a percentage, 0 when idle.
func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses) * 100
}

// dialRetry connects to one shard server, retrying while it starts up
// (the CI smoke launches servers and loadgen together).
func dialRetry(addr string, onPoint func(string, core.Window, geom.Vec2)) (*shardrpc.Client, error) {
	var lastErr error
	for i := 0; i < 20; i++ {
		c, err := shardrpc.Dial(shardrpc.ClientConfig{Addr: addr, OnPoint: onPoint})
		if err == nil {
			return c, nil
		}
		lastErr = err
		time.Sleep(250 * time.Millisecond)
	}
	return nil, lastErr
}
