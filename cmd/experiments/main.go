// Command experiments regenerates the paper's tables and figures at a
// configurable scale. Each experiment id matches DESIGN.md's index;
// "all" runs everything.
//
// Usage:
//
//	experiments -run all -trials 5
//	experiments -run T5,F19
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"polardraw/internal/experiment"
)

// runner executes one experiment at the requested trial scale and
// returns a printable result.
type runner struct {
	id    string
	title string
	run   func(sc experiment.Scenario, trials int) (fmt.Stringer, error)
}

func runners() []runner {
	letters10 := []rune{'A', 'C', 'E', 'K', 'L', 'M', 'O', 'S', 'W', 'Z'}
	return []runner{
		{"T1", "infrastructure cost", func(experiment.Scenario, int) (fmt.Stringer, error) {
			return experiment.Table1Cost(), nil
		}},
		{"F2", "recovered WOW,M,C,W,Z", func(sc experiment.Scenario, _ int) (fmt.Stringer, error) {
			trials, err := experiment.Figure2Trajectory(sc)
			if err != nil {
				return nil, err
			}
			var b strings.Builder
			for _, t := range trials {
				fmt.Fprintf(&b, "%s: %.1f cm\n%s\n", t.Label, t.Procrustes*100,
					experiment.RenderTrajectory(t.Recovered, 48, 10))
			}
			return stringerOf(b.String()), nil
		}},
		{"F3B", "feasibility: rotation", func(sc experiment.Scenario, _ int) (fmt.Stringer, error) {
			return experiment.Figure3bRotation(sc.Seed), nil
		}},
		{"F3C", "feasibility: translation", func(sc experiment.Scenario, _ int) (fmt.Stringer, error) {
			return experiment.Figure3cTranslation(sc.Seed), nil
		}},
		{"F9", "two-antenna RSS trends", func(sc experiment.Scenario, _ int) (fmt.Stringer, error) {
			return experiment.Figure9RSSTrends(sc)
		}},
		{"F10", "azimuthal correction", func(sc experiment.Scenario, _ int) (fmt.Stringer, error) {
			return experiment.Figure10Correction(sc, "WE")
		}},
		{"F13", "letter accuracy", func(sc experiment.Scenario, trials int) (fmt.Stringer, error) {
			return experiment.Figure13Letters(sc, experiment.PolarDraw2, trials)
		}},
		{"F14", "confusion matrix", func(sc experiment.Scenario, trials int) (fmt.Stringer, error) {
			res, err := experiment.Figure13Letters(sc, experiment.PolarDraw2, trials)
			if err != nil {
				return nil, err
			}
			return stringerOf("Figure 14:\n" + res.Confusion.String()), nil
		}},
		{"F15", "air vs whiteboard", func(sc experiment.Scenario, trials int) (fmt.Stringer, error) {
			return experiment.Figure15AirVsBoard(sc, 4, 10, trials)
		}},
		{"T5", "accuracy vs distance", func(sc experiment.Scenario, trials int) (fmt.Stringer, error) {
			return experiment.Table5Distance(sc, letters10, trials)
		}},
		{"F16", "bystander multipath", func(sc experiment.Scenario, trials int) (fmt.Stringer, error) {
			return experiment.Figure16Bystander(sc, letters10, trials)
		}},
		{"T6", "polarization ablation", func(sc experiment.Scenario, trials int) (fmt.Stringer, error) {
			return experiment.Table6Ablation(sc, letters10, trials)
		}},
		{"F18", "word recognition x3 systems", func(sc experiment.Scenario, trials int) (fmt.Stringer, error) {
			return experiment.Figure18Words(sc, 10, trials)
		}},
		{"F19", "Procrustes CDF x3 systems", func(sc experiment.Scenario, trials int) (fmt.Stringer, error) {
			return experiment.Figure19CDF(sc, []rune{'A', 'C', 'M', 'S', 'Z'}, trials)
		}},
		{"F20", "trajectory showcase", func(sc experiment.Scenario, _ int) (fmt.Stringer, error) {
			res, err := experiment.Figure20Showcase(sc, 'W', 1)
			if err != nil {
				return nil, err
			}
			var b strings.Builder
			b.WriteString(res.String())
			b.WriteString("truth:\n")
			b.WriteString(experiment.RenderTrajectory(res.Truth, 48, 10))
			for sys, traj := range res.Recovered {
				fmt.Fprintf(&b, "%s:\n%s", sys, experiment.RenderTrajectory(traj, 48, 10))
			}
			return stringerOf(b.String()), nil
		}},
		{"F21", "accuracy across users", func(sc experiment.Scenario, trials int) (fmt.Stringer, error) {
			return experiment.Figure21Users(sc, letters10, trials)
		}},
		{"F22", "distance sweep (comparison rig)", func(sc experiment.Scenario, trials int) (fmt.Stringer, error) {
			return experiment.Table5Distance(sc, letters10, trials)
		}},
		{"T7", "elevation sensitivity", func(sc experiment.Scenario, trials int) (fmt.Stringer, error) {
			return experiment.Table7Elevation(sc, letters10, trials)
		}},
		{"T8", "gamma sensitivity", func(sc experiment.Scenario, trials int) (fmt.Stringer, error) {
			return experiment.Table8Gamma(sc, letters10, trials)
		}},
	}
}

type stringerOf string

func (s stringerOf) String() string { return string(s) }

func main() {
	var (
		run    = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		trials = flag.Int("trials", 2, "trials per configuration (the paper uses 10-100)")
		seed   = flag.Uint64("seed", 1, "simulation seed")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	rs := runners()
	if *list {
		for _, r := range rs {
			fmt.Printf("%-4s %s\n", r.id, r.title)
		}
		return
	}

	want := map[string]bool{}
	if *run != "all" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	valid := map[string]bool{}
	for _, r := range rs {
		valid[r.id] = true
	}
	var unknown []string
	for id := range want {
		if !valid[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "experiments: unknown ids: %s (use -list)\n", strings.Join(unknown, ", "))
		os.Exit(2)
	}

	sc := experiment.Default(*seed)
	failed := false
	for _, r := range rs {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		fmt.Printf("== %s: %s ==\n", r.id, r.title)
		res, err := r.run(sc, *trials)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", r.id, err)
			failed = true
			continue
		}
		fmt.Println(res)
	}
	if failed {
		os.Exit(1)
	}
}
