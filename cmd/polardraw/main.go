// Command polardraw is the whiteboard-in-the-air demo: it synthesizes a
// writing session (or collects one from an LLRP reader), runs the
// PolarDraw tracking pipeline, renders the recovered trajectory as
// ASCII art, and classifies it.
//
// Usage:
//
//	polardraw -text HELLO                # simulate and track a word
//	polardraw -letter Q -air             # one in-air letter
//	polardraw -llrp 127.0.0.1:5084       # track a live LLRP stream
//	polardraw -text WOW -system tagoram4 # use a baseline system
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"polardraw/internal/experiment"
	"polardraw/internal/geom"
	"polardraw/internal/llrp"
	"polardraw/internal/reader"
	"polardraw/internal/recognition"
)

func main() {
	var (
		text    = flag.String("text", "", "word to write and track (A-Z)")
		letter  = flag.String("letter", "", "single letter to write and track")
		air     = flag.Bool("air", false, "write in the air instead of on the whiteboard")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		system  = flag.String("system", "polardraw", "tracking system: polardraw, polardraw-nopol, tagoram2, tagoram4, rfidraw4")
		llrpSrv = flag.String("llrp", "", "track a live LLRP reader at host:port instead of simulating")
		size    = flag.Float64("size", 0.20, "letter size in metres")
	)
	flag.Parse()

	sys, err := parseSystem(*system)
	if err != nil {
		fatal(err)
	}

	sc := experiment.Default(*seed)
	sc.InAir = *air
	sc.LetterSize = *size

	if *llrpSrv != "" {
		if err := trackLLRP(sc, sys, *llrpSrv); err != nil {
			fatal(err)
		}
		return
	}

	label := strings.ToUpper(*text)
	if *letter != "" {
		label = strings.ToUpper(*letter)
	}
	if label == "" {
		label = "HI"
	}

	var trial experiment.Trial
	if len(label) == 1 {
		trial, err = sc.RunLetter(sys, rune(label[0]), 1)
	} else {
		trial, err = sc.RunWord(sys, label, 1)
	}
	if err != nil {
		fatal(err)
	}
	report(sys, trial)
}

func parseSystem(s string) (experiment.System, error) {
	switch strings.ToLower(s) {
	case "polardraw":
		return experiment.PolarDraw2, nil
	case "polardraw-nopol":
		return experiment.PolarDrawNoPol, nil
	case "tagoram2":
		return experiment.Tagoram2, nil
	case "tagoram4":
		return experiment.Tagoram4, nil
	case "rfidraw4":
		return experiment.RFIDraw4, nil
	default:
		return 0, fmt.Errorf("unknown system %q", s)
	}
}

func report(sys experiment.System, trial experiment.Trial) {
	fmt.Printf("system: %s\n", sys)
	fmt.Printf("wrote:  %s\n\n", trial.Label)
	fmt.Println("ground truth:")
	fmt.Print(experiment.RenderTrajectory(trial.Truth, 60, 14))
	fmt.Println("\nrecovered:")
	fmt.Print(experiment.RenderTrajectory(trial.Recovered, 60, 14))
	fmt.Printf("\nProcrustes distance: %.1f cm\n", trial.Procrustes*100)

	if len(trial.Label) == 1 {
		lr := recognition.NewLetterRecognizer()
		if got, d, err := lr.Classify(trial.Recovered); err == nil {
			fmt.Printf("recognized as: %c (distance %.3f)\n", got, d)
		}
	} else if len(trial.Label) >= 2 && len(trial.Label) <= 5 {
		wr := recognition.NewWordRecognizer(experiment.Lexicon(len(trial.Label)))
		if got, d, err := wr.Classify(trial.Recovered); err == nil {
			fmt.Printf("recognized as: %s (distance %.3f, lexicon %v)\n", got, d, wr.Lexicon())
		}
	}
}

// trackLLRP collects samples from a live (or simulated, see
// cmd/readersim) LLRP reader and tracks them with PolarDraw.
func trackLLRP(sc experiment.Scenario, sys experiment.System, addr string) error {
	c, err := llrp.Dial(addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		return err
	}
	samples, err := c.Collect()
	if err != nil {
		return err
	}
	fmt.Printf("collected %d tag reads over LLRP from %s\n", len(samples), addr)
	traj, err := trackSamples(sc, sys, samples)
	if err != nil {
		return err
	}
	fmt.Println("recovered trajectory:")
	fmt.Print(experiment.RenderTrajectory(traj, 60, 14))
	return nil
}

func trackSamples(sc experiment.Scenario, sys experiment.System, samples []reader.Sample) (geom.Polyline, error) {
	// The experiment package owns system construction; route through a
	// scenario-built tracker on the default rig.
	return experiment.TrackerFor(sc, sys).Track(samples)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "polardraw:", err)
	os.Exit(1)
}
