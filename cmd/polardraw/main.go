// Command polardraw is the whiteboard-in-the-air demo: it synthesizes a
// writing session (or collects one from an LLRP reader), runs the
// PolarDraw tracking pipeline, renders the recovered trajectory as
// ASCII art, and classifies it.
//
// The serving modes (-serve, -serve-shard) are consumers of the public
// polardraw client API; the decode/topology flags they share with
// cmd/loadgen come from polardraw.BindFlags.
//
// Usage:
//
//	polardraw -text HELLO                # simulate and track a word
//	polardraw -letter Q -air             # one in-air letter
//	polardraw -llrp 127.0.0.1:5084       # track a live LLRP stream
//	polardraw -serve -llrp 127.0.0.1:5084 # multi-pen streaming session server
//	polardraw -serve-shard -listen :7100 # shard RPC server (see cmd/loadgen -shards)
//	polardraw -text WOW -system tagoram4 # use a baseline system
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"polardraw"
	"polardraw/internal/experiment"
	"polardraw/internal/geom"
	"polardraw/internal/llrp"
	"polardraw/internal/reader"
	"polardraw/internal/recognition"
)

func main() {
	var (
		text    = flag.String("text", "", "word to write and track (A-Z)")
		letter  = flag.String("letter", "", "single letter to write and track")
		air     = flag.Bool("air", false, "write in the air instead of on the whiteboard")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		system  = flag.String("system", "polardraw", "tracking system: polardraw, polardraw-nopol, tagoram2, tagoram4, rfidraw4")
		llrpSrv = flag.String("llrp", "", "track a live LLRP reader at host:port instead of simulating")
		serve   = flag.Bool("serve", false, "with -llrp: run the streaming session server, demuxing every pen in the stream")
		size    = flag.Float64("size", 0.20, "letter size in metres")

		shard  = flag.Bool("serve-shard", false, "run a shard RPC server hosting one session manager (a multi-process shard; see cmd/loadgen -shards)")
		listen = flag.String("listen", ":7100", "with -serve-shard: TCP listen address")

		// The serving tier's decode/topology flags (-shards, -window,
		// -lag, -topk, ...) are shared with cmd/loadgen through one
		// registration.
		sf = polardraw.BindFlags(flag.CommandLine)
	)
	flag.Parse()
	ctx := context.Background()

	sys, err := parseSystem(*system)
	if err != nil {
		fatal(err)
	}

	sc := experiment.Default(*seed)
	sc.InAir = *air
	sc.LetterSize = *size

	if *shard {
		if err := serveShard(sc, *listen, sf); err != nil {
			fatal(err)
		}
		return
	}
	if *serve {
		if *llrpSrv == "" {
			fatal(fmt.Errorf("-serve requires -llrp host:port"))
		}
		if err := serveLLRP(ctx, sc, *llrpSrv, sf); err != nil {
			fatal(err)
		}
		return
	}
	if *llrpSrv != "" {
		if err := trackLLRP(sc, sys, *llrpSrv); err != nil {
			fatal(err)
		}
		return
	}

	label := strings.ToUpper(*text)
	if *letter != "" {
		label = strings.ToUpper(*letter)
	}
	if label == "" {
		label = "HI"
	}

	var trial experiment.Trial
	if len(label) == 1 {
		trial, err = sc.RunLetter(sys, rune(label[0]), 1)
	} else {
		trial, err = sc.RunWord(sys, label, 1)
	}
	if err != nil {
		fatal(err)
	}
	report(sys, trial)
}

func parseSystem(s string) (experiment.System, error) {
	switch strings.ToLower(s) {
	case "polardraw":
		return experiment.PolarDraw2, nil
	case "polardraw-nopol":
		return experiment.PolarDrawNoPol, nil
	case "tagoram2":
		return experiment.Tagoram2, nil
	case "tagoram4":
		return experiment.Tagoram4, nil
	case "rfidraw4":
		return experiment.RFIDraw4, nil
	default:
		return 0, fmt.Errorf("unknown system %q", s)
	}
}

func report(sys experiment.System, trial experiment.Trial) {
	fmt.Printf("system: %s\n", sys)
	fmt.Printf("wrote:  %s\n\n", trial.Label)
	fmt.Println("ground truth:")
	fmt.Print(experiment.RenderTrajectory(trial.Truth, 60, 14))
	fmt.Println("\nrecovered:")
	fmt.Print(experiment.RenderTrajectory(trial.Recovered, 60, 14))
	fmt.Printf("\nProcrustes distance: %.1f cm\n", trial.Procrustes*100)

	if len(trial.Label) == 1 {
		lr := recognition.NewLetterRecognizer()
		if got, d, err := lr.Classify(trial.Recovered); err == nil {
			fmt.Printf("recognized as: %c (distance %.3f)\n", got, d)
		}
	} else if len(trial.Label) >= 2 && len(trial.Label) <= 5 {
		wr := recognition.NewWordRecognizer(experiment.Lexicon(len(trial.Label)))
		if got, d, err := wr.Classify(trial.Recovered); err == nil {
			fmt.Printf("recognized as: %s (distance %.3f, lexicon %v)\n", got, d, wr.Lexicon())
		}
	}
}

// trackLLRP collects samples from a live (or simulated, see
// cmd/readersim) LLRP reader and tracks them with PolarDraw.
func trackLLRP(sc experiment.Scenario, sys experiment.System, addr string) error {
	c, err := llrp.Dial(addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		return err
	}
	samples, err := c.Collect()
	if err != nil {
		return err
	}
	fmt.Printf("collected %d tag reads over LLRP from %s\n", len(samples), addr)
	traj, err := trackSamples(sc, sys, samples)
	if err != nil {
		return err
	}
	fmt.Println("recovered trajectory:")
	fmt.Print(experiment.RenderTrajectory(traj, 60, 14))
	return nil
}

func trackSamples(sc experiment.Scenario, sys experiment.System, samples []reader.Sample) (geom.Polyline, error) {
	// The experiment package owns system construction; route through a
	// scenario-built tracker on the default rig.
	return experiment.TrackerFor(sc, sys).Track(samples)
}

// serveLLRP runs the streaming session server on the public client
// API: it subscribes to the LLRP report stream, demultiplexes every
// pen (EPC) in it through the serving tier, prints live progress from
// the unified event stream, and renders each pen's trajectory when the
// stream ends.
func serveLLRP(ctx context.Context, sc experiment.Scenario, addr string, sf *polardraw.Flags) error {
	c, err := llrp.Dial(addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Start(); err != nil {
		return err
	}
	fmt.Printf("session server: streaming from %s\n", addr)

	newClient := func(pensSeen int) (*polardraw.Client, error) {
		opts, err := sf.Options()
		if err != nil {
			return nil, err
		}
		if *sf.Window == 0 {
			// The aggregate read rate divides among the pens, so the
			// averaging window grows proportionally to keep both
			// antennas represented in each window; the 1.5 slack
			// absorbs inventory slot jitter.
			window := 0.05 * float64(pensSeen)
			if pensSeen > 1 {
				window *= 1.5
			}
			opts = append(opts, polardraw.WithWindow(window))
		}
		opts = append(opts, polardraw.WithAntennas(sc.Rig.Antennas()))
		return polardraw.Open(ctx, opts...)
	}

	// Live progress from the unified event stream: one subscription
	// covers every pen on every shard.
	progress := func(cl *polardraw.Client) polardraw.CancelFunc {
		events, cancel := cl.Subscribe(ctx)
		go func() {
			windows := map[string]int{}
			for ev := range events {
				if ev.Kind != polardraw.EventPoint {
					continue
				}
				windows[ev.EPC]++
				if n := windows[ev.EPC]; n%10 == 1 { // progress line every 10 windows per pen
					epc := ev.EPC
					fmt.Printf("  pen …%s t=%5.2fs window %3d live=(%.3f, %.3f)\n",
						epc[max(0, len(epc)-6):], ev.Window.T, n, ev.Live.X, ev.Live.Y)
				}
			}
		}()
		return cancel
	}

	// Peek at the first second of traffic to learn the pen count (it
	// sets the auto window), then dispatch live.
	var client *polardraw.Client
	var pending []reader.Sample
	epcs := map[string]bool{}
	err = c.Stream(func(batch []reader.Sample) error {
		for _, s := range batch {
			if !epcs[s.EPC] {
				epcs[s.EPC] = true
				if client != nil {
					// The window was sized from the pens seen in the
					// first second; a later joiner shares the read
					// rate but not that sizing, so its decode may be
					// too coarse to survive. Tell the operator.
					fmt.Printf("warning: pen %s joined after the window was fixed; "+
						"restart -serve (or set -window) to size for %d pens\n",
						s.EPC, len(epcs))
				}
			}
		}
		if client == nil {
			pending = append(pending, batch...)
			// Elapsed (not absolute) time: a real reader stamps
			// reports with epoch microseconds.
			if last := pending[len(pending)-1]; last.T-pending[0].T < 1.0 {
				return nil
			}
			cl, err := newClient(len(epcs))
			if err != nil {
				return err
			}
			client = cl
			progress(client)
			fmt.Printf("session server: %d pen(s) detected\n", len(epcs))
			err = client.DispatchBatch(ctx, pending)
			pending = nil
			return err
		}
		return client.DispatchBatch(ctx, batch)
	})
	if err != nil {
		return err
	}
	if client == nil {
		// Short stream: everything is still buffered.
		cl, err := newClient(len(epcs))
		if err != nil {
			return err
		}
		client = cl
		if err := client.DispatchBatch(ctx, pending); err != nil {
			return err
		}
	}

	// Shard ingress is asynchronous: let the received counters settle
	// (two identical snapshots 50 ms apart) so the report reflects the
	// full stream, then close.
	stats, err := client.Stats(ctx)
	if err != nil {
		return err
	}
	for settle := 0; settle < 100; settle++ {
		time.Sleep(50 * time.Millisecond)
		next, err := client.Stats(ctx)
		if err != nil {
			return err
		}
		same := len(next) == len(stats)
		for i := 0; same && i < len(next); i++ {
			same = next[i].Received == stats[i].Received
		}
		stats = next
		if same {
			break
		}
	}
	results, err := client.Close(ctx) // drains the remaining queued reports
	if err != nil {
		return err
	}
	for _, st := range stats {
		fmt.Printf("pen %s: %d reads, queue depth mean %.1f max %d\n",
			st.EPC, st.Received, st.QueueMeanDepth, st.QueueMaxDepth)
	}
	if len(results) == 0 {
		return fmt.Errorf("no pen produced a decodable stream")
	}
	for epc, res := range results {
		fmt.Printf("\npen %s (%d windows, correction %.2f rad):\n",
			epc, len(res.Windows), res.Correction)
		fmt.Print(experiment.RenderTrajectory(res.Trajectory, 60, 12))
	}
	return nil
}

// serveShard runs one shard of the multi-process session tier: a
// polardraw.ShardServer on the default rig, spoken to by clients
// opened with WithShardServers (see cmd/loadgen -shards). It serves
// until killed.
func serveShard(sc experiment.Scenario, addr string, sf *polardraw.Flags) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	opts, err := sf.Options()
	if err != nil {
		return err
	}
	opts = append(opts, polardraw.WithAntennas(sc.Rig.Antennas()))
	srv := polardraw.NewShardServer(opts...)
	if *sf.MetricsAddr != "" {
		ms, err := srv.ServeMetrics(*sf.MetricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer ms.Close()
		fmt.Printf("shard server: metrics at http://%s/metrics\n", ms.Addr())
	}
	maxSessions := *sf.MaxSessions
	if maxSessions == 0 {
		maxSessions = polardraw.DefaultServerMaxSessions
	}
	fmt.Printf("shard server: listening on %s (window=%gs lag=%d topk=%d max-sessions=%d)\n",
		ln.Addr(), *sf.Window, *sf.Lag, *sf.TopK, maxSessions)
	return srv.Serve(ln)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "polardraw:", err)
	os.Exit(1)
}
