package main

import (
	"strings"
	"testing"
)

// sample is a realistic CI transcript slice: bench results with custom
// metrics interleaved with loadgen output and trailers, all of which
// must be ignored.
const sample = `goos: linux
goarch: amd64
pkg: polardraw
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStreamTracker-8    	       5	  40935596 ns/op	       481.0 samples/op	 4396243 B/op	      87 allocs/op
BenchmarkStreamTrackerTopK 	       5	   4466371 ns/op	       192.0 active-cells/op	       481.0 samples/op	        80.22 stencil-hit-%	 4421371 B/op	     205 allocs/op
loadgen: pens=64 pace=false local shards=4
windows closed: 52886 (17178 windows/s)
PASS
ok  	polardraw	1.044s
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "polardraw" {
		t.Fatalf("context not captured: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu not captured: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}

	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkStreamTracker" || b.Procs != 8 || b.Iterations != 5 {
		t.Fatalf("first benchmark header: %+v", b)
	}
	if b.Metrics["ns/op"] != 40935596 || b.Metrics["allocs/op"] != 87 ||
		b.Metrics["B/op"] != 4396243 || b.Metrics["samples/op"] != 481 {
		t.Fatalf("first benchmark metrics: %+v", b.Metrics)
	}

	b = rep.Benchmarks[1]
	if b.Name != "BenchmarkStreamTrackerTopK" || b.Procs != 0 {
		t.Fatalf("second benchmark header: %+v", b)
	}
	if b.Metrics["active-cells/op"] != 192 || b.Metrics["stencil-hit-%"] != 80.22 {
		t.Fatalf("custom metrics not captured: %+v", b.Metrics)
	}
}

func TestParseLineRejectsNonBench(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	polardraw	1.044s",
		"loadgen: pens=64",
		"BenchmarkBroken only three",          // odd metric fields
		"BenchmarkBroken x 12 ns/op",          // non-numeric iterations
		"Benchmark 5 abc ns/op",               // non-numeric value
		"--- BENCH: BenchmarkStreamTracker-8", // log header
		"    bench_test.go:61: Figure 2: ...", // b.Log output
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("parseLine accepted %q", line)
		}
	}
}
