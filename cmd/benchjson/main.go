// Command benchjson converts `go test -bench` text output into a
// machine-diffable JSON document, so CI can upload a per-PR benchmark
// artifact (ns/op, B/op, allocs/op, and every custom b.ReportMetric
// unit) that tooling can compare across PRs without re-parsing bench
// text.
//
//	go test -run='^$' -bench=. -benchmem . | go run ./cmd/benchjson -o BENCH.json
//
// Non-benchmark lines (logs, loadgen output, PASS/ok trailers) are
// ignored, so piping a whole CI transcript through it is fine.
// Repeated runs of one benchmark (-count > 1) stay separate entries,
// preserving run-to-run spread.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one `Benchmark...` result line.
type Benchmark struct {
	// Name is the benchmark name with the -P GOMAXPROCS suffix (if
	// any) stripped into Procs.
	Name  string `json:"name"`
	Procs int    `json:"procs,omitempty"`
	// Iterations is b.N for the run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every reported pair, e.g.
	// "ns/op", "B/op", "allocs/op", "samples/op".
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole document, with the context lines `go test`
// prints before the results.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one benchmark result line, reporting ok=false for
// anything that is not one.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Shortest legal line: name, iterations, value, unit.
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Metrics: map[string]float64{}}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = n
	// The rest are (value, unit) pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, false
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, true
}

// parse consumes a whole `go test -bench` transcript.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file, got %d", flag.NArg()))
	}

	rep, err := parse(in)
	if err != nil {
		fatal(err)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(buf); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
