// Command readersim runs a standalone LLRP-lite reader simulator: it
// synthesizes one writing session, runs the RFID reader simulation
// over it, and serves the resulting tag-report stream to LLRP clients
// (cmd/polardraw -llrp, examples/llrpstream) over TCP.
//
// Usage:
//
//	readersim -listen 127.0.0.1:5084 -text HELLO
//	polardraw -llrp 127.0.0.1:5084
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"polardraw/internal/font"
	"polardraw/internal/geom"
	"polardraw/internal/llrp"
	"polardraw/internal/motion"
	"polardraw/internal/reader"
	"polardraw/internal/rf"
	"polardraw/internal/tag"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:5084", "address to serve LLRP on (5084 is the standard LLRP port)")
		text     = flag.String("text", "WOW", "word the simulated user writes")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		air      = flag.Bool("air", false, "write in the air")
		realtime = flag.Bool("realtime", false, "pace report batches at roughly live speed")
		once     = flag.Bool("once", false, "serve a single client and exit")
	)
	flag.Parse()

	samples, dur, err := simulate(strings.ToUpper(*text), *seed, *air)
	if err != nil {
		fmt.Fprintln(os.Stderr, "readersim:", err)
		os.Exit(1)
	}

	srv := &llrp.Server{Samples: samples, BatchSize: 8}
	if *realtime {
		// ~8 reports per batch at ~100 reads/s.
		srv.Interval = 80 * time.Millisecond
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "readersim:", err)
		os.Exit(1)
	}
	fmt.Printf("readersim: serving %d tag reads (%.1f s of writing %q) on %s\n",
		len(samples), dur, *text, ln.Addr())

	if *once {
		conn, err := ln.Accept()
		if err != nil {
			fmt.Fprintln(os.Stderr, "readersim:", err)
			os.Exit(1)
		}
		srvOne(srv, conn)
		return
	}
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "readersim:", err)
		os.Exit(1)
	}
}

// srvOne handles exactly one connection through the server's handler
// by serving on a single-connection listener.
func srvOne(srv *llrp.Server, conn net.Conn) {
	ln := &oneShotListener{conn: conn}
	_ = srv.Serve(ln)
}

// oneShotListener yields one connection then reports closed.
type oneShotListener struct {
	conn net.Conn
}

func (l *oneShotListener) Accept() (net.Conn, error) {
	if l.conn == nil {
		return nil, net.ErrClosed
	}
	c := l.conn
	l.conn = nil
	return c, nil
}

func (l *oneShotListener) Close() error   { return nil }
func (l *oneShotListener) Addr() net.Addr { return &net.TCPAddr{} }

// simulate produces the tag-read stream for the given word.
func simulate(text string, seed uint64, air bool) ([]reader.Sample, float64, error) {
	rig := motion.DefaultRig()
	path := font.WordPath(text, 0.2, 0.25)
	if len(path) < 2 {
		return nil, 0, fmt.Errorf("nothing writable in %q", text)
	}
	_, max := path.Bounds()
	if max.X > rig.BoardW*0.95 {
		path = path.Scale(rig.BoardW * 0.95 / max.X)
	}
	_, max = path.Bounds()
	c := rig.Centre()
	path = path.Translate(geom.Vec2{X: c.X - max.X/2, Y: c.Y - max.Y/2})

	sess := motion.Write(path, text, motion.Config{Seed: seed, InAir: air})
	ants := rig.Antennas()
	ch := &rf.Channel{Reflectors: rf.OfficeReflectors(rig.BoardW)}
	tg := tag.AD227(1)
	tg.ApplyTo(ch)
	rd := reader.New(reader.Config{
		Antennas: ants[:],
		Channel:  ch,
		EPC:      tg.EPC,
		Seed:     seed,
	})
	return rd.Inventory(sess), sess.Duration(), nil
}
