// Command readersim runs a standalone LLRP-lite reader simulator: it
// synthesizes one or more writing sessions, runs the RFID reader
// simulation over them, and serves the resulting tag-report stream to
// LLRP clients (cmd/polardraw -llrp/-serve, examples/llrpstream) over
// TCP.
//
// Usage:
//
//	readersim -listen 127.0.0.1:5084 -text HELLO
//	readersim -pens 4 -text HI,NO,UP,GO     # four pens sharing the reader
//	polardraw -llrp 127.0.0.1:5084
//	polardraw -serve -llrp 127.0.0.1:5084   # multi-pen session server
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"polardraw/internal/font"
	"polardraw/internal/geom"
	"polardraw/internal/llrp"
	"polardraw/internal/motion"
	"polardraw/internal/reader"
	"polardraw/internal/rf"
	"polardraw/internal/tag"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:5084", "address to serve LLRP on (5084 is the standard LLRP port)")
		text     = flag.String("text", "WOW", "word(s) the simulated users write; comma-separated, cycled across pens")
		pens     = flag.Int("pens", 1, "number of simultaneously writing pens (tags) sharing the reader")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		air      = flag.Bool("air", false, "write in the air")
		realtime = flag.Bool("realtime", false, "pace report batches at roughly live speed")
		once     = flag.Bool("once", false, "serve a single client and exit")
	)
	flag.Parse()
	if *pens < 1 {
		*pens = 1
	}

	words := strings.Split(strings.ToUpper(*text), ",")
	samples, dur, err := simulate(words, *pens, *seed, *air)
	if err != nil {
		fmt.Fprintln(os.Stderr, "readersim:", err)
		os.Exit(1)
	}

	srv := &llrp.Server{Samples: samples, BatchSize: 8}
	if *realtime {
		// ~8 reports per batch at ~100 reads/s.
		srv.Interval = 80 * time.Millisecond
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "readersim:", err)
		os.Exit(1)
	}
	fmt.Printf("readersim: serving %d tag reads (%.1f s, %d pen(s) writing %s) on %s\n",
		len(samples), dur, *pens, strings.Join(words, "/"), ln.Addr())

	if *once {
		conn, err := ln.Accept()
		if err != nil {
			fmt.Fprintln(os.Stderr, "readersim:", err)
			os.Exit(1)
		}
		srvOne(srv, conn)
		return
	}
	if err := srv.Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "readersim:", err)
		os.Exit(1)
	}
}

// srvOne handles exactly one connection through the server's handler
// by serving on a single-connection listener.
func srvOne(srv *llrp.Server, conn net.Conn) {
	ln := &oneShotListener{conn: conn}
	_ = srv.Serve(ln)
}

// oneShotListener yields one connection then reports closed.
type oneShotListener struct {
	conn net.Conn
}

func (l *oneShotListener) Accept() (net.Conn, error) {
	if l.conn == nil {
		return nil, net.ErrClosed
	}
	c := l.conn
	l.conn = nil
	return c, nil
}

func (l *oneShotListener) Close() error   { return nil }
func (l *oneShotListener) Addr() net.Addr { return &net.TCPAddr{} }

// wordPath lays out one word on the rig's writing block.
func wordPath(rig motion.Rig, text string) (geom.Polyline, error) {
	path := font.WordPath(text, 0.2, 0.25)
	if len(path) < 2 {
		return nil, fmt.Errorf("nothing writable in %q", text)
	}
	_, max := path.Bounds()
	if max.X > rig.BoardW*0.95 {
		path = path.Scale(rig.BoardW * 0.95 / max.X)
	}
	_, max = path.Bounds()
	c := rig.Centre()
	return path.Translate(geom.Vec2{X: c.X - max.X/2, Y: c.Y - max.Y/2}), nil
}

// simulate produces the mixed tag-read stream for pens writers; words
// are cycled across pens and each pen carries its own tag (EPC).
func simulate(words []string, pens int, seed uint64, air bool) ([]reader.Sample, float64, error) {
	rig := motion.DefaultRig()
	ants := rig.Antennas()
	ch := &rf.Channel{Reflectors: rf.OfficeReflectors(rig.BoardW)}
	tag.AD227(1).ApplyTo(ch)
	rd := reader.New(reader.Config{
		Antennas: ants[:],
		Channel:  ch,
		EPC:      tag.AD227(1).EPC,
		Seed:     seed,
	})

	scenes := make([]reader.TaggedScene, 0, pens)
	dur := 0.0
	for k := 0; k < pens; k++ {
		word := words[k%len(words)]
		path, err := wordPath(rig, word)
		if err != nil {
			return nil, 0, err
		}
		sess := motion.Write(path, word, motion.Config{Seed: seed + uint64(k), InAir: air})
		if d := sess.Duration(); d > dur {
			dur = d
		}
		scenes = append(scenes, reader.TaggedScene{
			EPC:   tag.AD227(uint32(k + 1)).EPC,
			Scene: sess,
		})
	}
	if pens == 1 {
		// Single-pen inventory keeps the historical sample stream
		// (same seed, same timing) that existing clients expect.
		return rd.Inventory(scenes[0].Scene), dur, nil
	}
	return rd.MultiInventory(scenes), dur, nil
}
