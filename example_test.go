package polardraw_test

import (
	"context"
	"fmt"
	"log"
	"sort"

	"time"

	"polardraw"
	"polardraw/internal/font"
	"polardraw/internal/geom"
	"polardraw/internal/motion"
	"polardraw/internal/reader"
	"polardraw/internal/rf"
	"polardraw/internal/tag"
)

// penScene synthesizes the mixed tag-report stream of n pens writing
// letters simultaneously over one simulated reader — the examples'
// stand-in for a live LLRP stream.
func penScene(n int, seed uint64) ([]polardraw.Sample, []string, [2]polardraw.Antenna) {
	rig := motion.DefaultRig()
	ants := rig.Antennas()
	ch := &rf.Channel{Reflectors: rf.OfficeReflectors(rig.BoardW)}
	tag.AD227(1).ApplyTo(ch)
	letters := []rune{'A', 'C', 'M', 'S'}
	scenes := make([]reader.TaggedScene, 0, n)
	epcs := make([]string, 0, n)
	for k := 0; k < n; k++ {
		g, _ := font.Lookup(letters[k%len(letters)])
		path := g.Path().Scale(0.18).Translate(geom.Vec2{X: 0.18, Y: 0.03})
		sess := motion.Write(path, string(letters[k%len(letters)]), motion.Config{Seed: seed + uint64(k)})
		epc := tag.AD227(uint32(k + 1)).EPC
		scenes = append(scenes, reader.TaggedScene{EPC: epc, Scene: sess})
		epcs = append(epcs, epc)
	}
	rd := reader.New(reader.Config{Antennas: ants[:], Channel: ch, EPC: "", Seed: seed})
	return rd.MultiInventory(scenes), epcs, ants
}

// ExampleOpen runs the whole serving lifecycle against in-process
// shards: open, ingest a mixed two-pen stream, close, and read back
// one decoded trajectory per pen.
func ExampleOpen() {
	samples, _, antennas := penScene(2, 7)
	ctx := context.Background()

	c, err := polardraw.Open(ctx,
		polardraw.WithAntennas(antennas),
		polardraw.WithShards(2),
		polardraw.WithWindow(0.1), // two pens share the read rate
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.DispatchBatch(ctx, samples); err != nil {
		log.Fatal(err)
	}
	results, err := c.Close(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pens decoded:", len(results))
	epcs := make([]string, 0, len(results))
	for epc := range results {
		epcs = append(epcs, epc)
	}
	sort.Strings(epcs)
	for _, epc := range epcs {
		fmt.Printf("%s: trajectory decoded = %v\n", epc, len(results[epc].Trajectory) > 0)
	}
	// Output:
	// pens decoded: 2
	// e28011010000000000000001: trajectory decoded = true
	// e28011020000000000000002: trajectory decoded = true
}

// ExampleClient_OpenSession gives one pen its own decode
// configuration: the same options that set the client-wide default at
// Open override per session here, and travel to remote shards
// unchanged.
func ExampleClient_OpenSession() {
	samples, epcs, antennas := penScene(1, 11)
	ctx := context.Background()

	c, err := polardraw.Open(ctx,
		polardraw.WithAntennas(antennas),
		polardraw.WithWindow(0.05),
	)
	if err != nil {
		log.Fatal(err)
	}
	// This pen trades accuracy for memory: a narrow beam and a tight
	// smoothing lag, regardless of the client-wide defaults.
	err = c.OpenSession(ctx, epcs[0],
		polardraw.WithBeamTopK(64),
		polardraw.WithCommitLag(16),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.DispatchBatch(ctx, samples); err != nil {
		log.Fatal(err)
	}
	// Shard ingress is asynchronous: wait until the session has
	// received the full stream before finalizing it explicitly (Close
	// would drain implicitly).
	for {
		st, err := c.Stats(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if len(st) == 1 && st[0].Received == uint64(len(samples)) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	res, err := c.Finalize(ctx, epcs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decoded:", len(res.Trajectory) > 0)
	// Output:
	// decoded: true
}

// ExampleClient_Subscribe consumes the unified event stream: one
// subscription observes window closes, live points, smoother commits,
// and evictions for every pen on every shard — local or remote.
func ExampleClient_Subscribe() {
	samples, _, antennas := penScene(1, 13)
	ctx := context.Background()

	c, err := polardraw.Open(ctx,
		polardraw.WithAntennas(antennas),
		polardraw.WithWindow(0.05),
		polardraw.WithCommitLag(8),
	)
	if err != nil {
		log.Fatal(err)
	}
	events, cancel := c.Subscribe(ctx)
	done := make(chan map[polardraw.EventKind]int)
	go func() {
		kinds := map[polardraw.EventKind]int{}
		for ev := range events {
			kinds[ev.Kind]++
		}
		done <- kinds
	}()

	if err := c.DispatchBatch(ctx, samples); err != nil {
		log.Fatal(err)
	}
	if _, err := c.Close(ctx); err != nil {
		log.Fatal(err)
	}
	cancel()
	kinds := <-done

	fmt.Println("window closes = points:", kinds[polardraw.EventWindowClose] == kinds[polardraw.EventPoint])
	fmt.Println("saw commits:", kinds[polardraw.EventCommit] > 0)
	fmt.Println("evictions:", kinds[polardraw.EventEvict])
	// Output:
	// window closes = points: true
	// saw commits: true
	// evictions: 1
}
