package polardraw

import (
	"time"

	"polardraw/internal/core"
	"polardraw/internal/session"
)

// Option configures a Client at Open (or a ShardServer at
// NewShardServer).
type Option interface{ applyClient(*clientConfig) }

// SessionOption configures one pen session at Client.OpenSession.
// Every decode option ([WithBeamTopK], [WithCommitLag],
// [WithAdaptiveBeam], [WithWindow], [WithSpuriousPhase]) is both an
// Option and a SessionOption: passed to Open it sets the client-wide
// default, passed to OpenSession it overrides for that session alone.
type SessionOption interface{ applySession(*session.OpenOptions) }

// DecodeOption is a per-session decode parameter, usable both
// client-wide (as an Option to Open) and per pen (as a SessionOption
// to OpenSession).
type DecodeOption struct{ f func(*session.OpenOptions) }

func (o DecodeOption) applyClient(c *clientConfig)         { o.f(&c.decode) }
func (o DecodeOption) applySession(s *session.OpenOptions) { o.f(s) }

type optionFunc func(*clientConfig)

func (f optionFunc) applyClient(c *clientConfig) { f(c) }

// clientConfig is the assembled Open configuration.
type clientConfig struct {
	antennas [2]Antenna
	decode   session.OpenOptions // client-wide decode defaults

	shards  int      // local mode: in-process shard count
	servers []string // remote mode: shard server addresses

	queueSize   int
	shardQueue  int
	maxSessions int
	drop        bool
	eventBuffer int
	heartbeat   time.Duration

	journal         session.Journal
	checkpointEvery int
	admission       session.AdmissionConfig
}

func defaultClientConfig() clientConfig {
	return clientConfig{shards: session.DefaultShards}
}

// baseTracker assembles the core pipeline configuration the client's
// (or shard server's) sessions start from: the rig geometry plus the
// client-wide decode defaults. Unset decode options take the serving
// defaults (DefaultBeamTopK, DefaultCommitLag) — per-session
// OpenOptions can still override them, including back to zero.
func (c clientConfig) baseTracker() core.Config {
	cfg := core.Config{
		Antennas:  c.antennas,
		BeamTopK:  DefaultBeamTopK,
		CommitLag: DefaultCommitLag,
	}
	return c.decode.Apply(cfg)
}

func (c clientConfig) sessionConfig() session.Config {
	return session.Config{
		Tracker:         c.baseTracker(),
		QueueSize:       c.queueSize,
		MaxSessions:     c.maxSessions,
		DropWhenFull:    c.drop,
		EventBuffer:     c.eventBuffer,
		CheckpointEvery: c.checkpointEvery,
	}
}

// WithAntennas sets the two reader antennas (positions and
// polarization axes) the HMM grid and direction estimation are built
// on. Required for any real rig; the zero value decodes nothing
// useful.
func WithAntennas(ants [2]Antenna) Option {
	return optionFunc(func(c *clientConfig) { c.antennas = ants })
}

// WithShards runs the client over n in-process shards behind the
// rendezvous router (the single-process deployment; default
// session.DefaultShards). Mutually exclusive with WithShardServers.
func WithShards(n int) Option {
	return optionFunc(func(c *clientConfig) { c.shards = n; c.servers = nil })
}

// WithShardServers runs the client over remote shardrpc servers (see
// ShardServer / `polardraw -serve-shard`), one connection per address,
// behind the same rendezvous router as the in-process deployment.
// Tracker geometry and defaults are the servers'; per-session
// OpenSession options still apply and travel over the wire.
func WithShardServers(addrs ...string) Option {
	return optionFunc(func(c *clientConfig) { c.servers = append([]string(nil), addrs...) })
}

// WithBeamTopK bounds the decoder's active Viterbi beam by count
// (0 = window-only pruning; default DefaultBeamTopK). Client-wide at
// Open, per-session at OpenSession.
func WithBeamTopK(k int) DecodeOption {
	return DecodeOption{func(o *session.OpenOptions) { o.BeamTopK = &k }}
}

// WithCommitLag bounds the fixed-lag smoother's undecided window span,
// making resident decoder memory O(lag) (0 = unbounded; default
// DefaultCommitLag). Client-wide at Open, per-session at OpenSession.
func WithCommitLag(lag int) DecodeOption {
	return DecodeOption{func(o *session.OpenOptions) { o.CommitLag = &lag }}
}

// WithAdaptiveBeam toggles the adaptive top-K controller (requires a
// BeamTopK > 0). Client-wide at Open, per-session at OpenSession.
func WithAdaptiveBeam(on bool) DecodeOption {
	return DecodeOption{func(o *session.OpenOptions) { o.BeamAdaptive = &on }}
}

// WithWindow sets the preprocessing averaging window in seconds
// (default 0.05; widen it when many pens share one reader's read
// rate). Client-wide at Open, per-session at OpenSession.
func WithWindow(seconds float64) DecodeOption {
	return DecodeOption{func(o *session.OpenOptions) { o.Window = &seconds }}
}

// WithSpuriousPhase sets the adjacent-window phase-jump rejection
// threshold in radians (default 0.2). Client-wide at Open, per-session
// at OpenSession.
func WithSpuriousPhase(radians float64) DecodeOption {
	return DecodeOption{func(o *session.OpenOptions) { o.SpuriousPhase = &radians }}
}

// WithSessionQueue bounds each pen session's sample queue (default
// session.DefaultQueueSize).
func WithSessionQueue(n int) Option {
	return optionFunc(func(c *clientConfig) { c.queueSize = n })
}

// WithShardQueue bounds each shard's ingress queue (default
// session.DefaultShardQueue; local shards only).
func WithShardQueue(n int) Option {
	return optionFunc(func(c *clientConfig) { c.shardQueue = n })
}

// WithMaxSessions caps live sessions per shard before LRU eviction
// (default session.DefaultMaxSessions).
func WithMaxSessions(n int) Option {
	return optionFunc(func(c *clientConfig) { c.maxSessions = n })
}

// WithDropWhenFull selects lossy backpressure: full queues drop and
// count samples instead of blocking the dispatcher.
func WithDropWhenFull(on bool) Option {
	return optionFunc(func(c *clientConfig) { c.drop = on })
}

// WithEventBuffer bounds each Subscribe consumer's channel (default
// session.DefaultEventBuffer). A consumer that falls behind loses
// events rather than stalling decode workers.
func WithEventBuffer(n int) Option {
	return optionFunc(func(c *clientConfig) { c.eventBuffer = n })
}

// WithHeartbeat probes remote shard servers every interval, feeding
// the router's per-backend health (see Client.Health). Ignored for
// in-process shards, which have no transport to probe. With a journal
// attached the heartbeat is what detects a silently dead shard —
// buffered dispatch hides transport errors from the call path — so
// durable remote deployments should always set it.
func WithHeartbeat(interval time.Duration) Option {
	return optionFunc(func(c *clientConfig) { c.heartbeat = interval })
}

// WithJournal attaches a durability journal (WAL) to the client's
// router: every dispatched sample and checkpoint is recorded before it
// reaches a shard, and when a shard dies mid-stroke its sessions are
// rebuilt on a healthy shard from the latest checkpoint plus a journal
// replay (see NewMemJournal and NewFileJournal). Without a journal,
// routing never moves and a shard death loses its in-flight strokes —
// the pre-durability behavior. Requires blocking backpressure: with
// WithDropWhenFull the drop happens before the journal sees the
// sample.
func WithJournal(j Journal) Option {
	return optionFunc(func(c *clientConfig) { c.journal = j })
}

// WithAdmission bounds what the client's dispatch path will accept
// before shedding with ErrOverloaded: a per-backend in-flight cap plus
// a router-wide token-bucket sample rate (see AdmissionConfig; zero
// fields disable the corresponding limit). Shedding happens before the
// journal sees the sample — a shed sample is refused, not lost, and
// counts in Client.SamplesShed. Use it to keep one hot reader from
// starving every other pen on the tier.
func WithAdmission(cfg AdmissionConfig) Option {
	return optionFunc(func(c *clientConfig) { c.admission = cfg })
}

// WithCheckpointEvery makes every session emit a serialized snapshot
// of its decode state after every n closed preprocessing windows,
// bounding how much journal replay a recovery needs. Applies to in-process shards
// at Open and to shard servers at NewShardServer (a remote client's
// checkpoints are cut server-side and travel back on the event
// stream); 0 disables checkpointing.
func WithCheckpointEvery(n int) Option {
	return optionFunc(func(c *clientConfig) { c.checkpointEvery = n })
}
