package polardraw_test

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"polardraw"
)

// TestKillMidStrokeHandoff is the acceptance test for the durable
// session tier: two shard servers behind a journal-equipped client,
// the owner of a mid-flight stroke dies abruptly (Abort — no
// finalize, no goodbye), and the cluster must converge with every
// trajectory bit-identical to an uninterrupted local run and zero
// samples lost. Run under -race in CI.
func TestKillMidStrokeHandoff(t *testing.T) {
	const pens = 3
	samples, epcs, antennas := penScene(pens, 47)
	ctx := context.Background()

	decode := []polardraw.Option{
		polardraw.WithAntennas(antennas),
		polardraw.WithWindow(0.15),
		polardraw.WithBeamTopK(polardraw.DefaultBeamTopK),
		polardraw.WithCommitLag(polardraw.DefaultCommitLag),
	}

	// The uninterrupted reference.
	ref, err := polardraw.Open(ctx, append([]polardraw.Option{polardraw.WithShards(1)}, decode...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.DispatchBatch(ctx, samples); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Two shard servers; checkpoints are cut server-side and flow back
	// to the client's journal on the event stream.
	srvOpts := append([]polardraw.Option{polardraw.WithCheckpointEvery(4)}, decode...)
	servers := make(map[string]*polardraw.ShardServer, 2)
	var addrs []string
	for i := 0; i < 2; i++ {
		srv := polardraw.NewShardServer(srvOpts...)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(srv.Close)
		addr := ln.Addr().String()
		servers[addr] = srv
		addrs = append(addrs, addr)
	}

	journal := polardraw.NewMemJournal(0)
	c, err := polardraw.Open(ctx, append([]polardraw.Option{
		polardraw.WithShardServers(addrs...),
		polardraw.WithJournal(journal),
		polardraw.WithHeartbeat(50 * time.Millisecond),
	}, decode...)...)
	if err != nil {
		t.Fatal(err)
	}

	// Stream the first half, then kill the shard serving the first pen
	// — mid-stroke, every session live. Before the kill, wait for at
	// least one of the victim's server-side checkpoints to flow back
	// into the journal, so the recovery under test is the real one:
	// restore-from-checkpoint plus bounded tail replay, not a full
	// from-scratch replay.
	half := len(samples) / 2
	if err := c.DispatchBatch(ctx, samples[:half]); err != nil {
		t.Fatal(err)
	}
	victimAddr := c.BackendFor(epcs[0])
	ckptDeadline := time.Now().Add(10 * time.Second)
	for {
		if state, covered := journal.Checkpoint(epcs[0]); state != nil && covered > 0 {
			t.Logf("checkpoint for %s covers %d samples", epcs[0], covered)
			break
		}
		if time.Now().After(ckptDeadline) {
			t.Fatal("no checkpoint reached the journal before the kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, epc := range epcs {
		t.Logf("pre-crash route: %s -> %s", epc, c.BackendFor(epc))
	}
	t.Logf("killing %s", victimAddr)
	servers[victimAddr].Abort()

	// Keep streaming through the outage: with a journal attached,
	// dispatch errors are delivery delays (journaled, replayed by the
	// failover), not losses.
	for _, smp := range samples[half:] {
		_ = c.Dispatch(ctx, smp)
	}

	// Convergence: the victim marked unhealthy and every pen routed to
	// a healthy backend.
	deadline := time.Now().Add(30 * time.Second)
	for {
		healthy := map[string]bool{}
		for _, h := range c.Health() {
			healthy[h.Name] = h.Healthy
		}
		ok := !healthy[victimAddr]
		for _, epc := range epcs {
			if !healthy[c.BackendFor(epc)] {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged: health=%+v routes=%v",
				c.Health(), func() []string {
					var r []string
					for _, epc := range epcs {
						r = append(r, c.BackendFor(epc))
					}
					return r
				}())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Close returns an error for the dead backend; the survivor's
	// results still come back and must carry every pen.
	got, _ := c.Close(ctx)
	if len(got) != pens {
		t.Fatalf("decoded %d of %d pens across the crash", len(got), pens)
	}
	for _, epc := range epcs {
		w, g := want[epc], got[epc]
		if !reflect.DeepEqual(g, w) {
			t.Errorf("EPC %s: post-crash decode diverged from the uninterrupted run (want %d pts, got %d)",
				epc, len(w.Trajectory), len(g.Trajectory))
		}
	}
	if lost := c.SamplesLost(); lost != 0 {
		t.Fatalf("SamplesLost = %d across a shard kill with WAL", lost)
	}
}
