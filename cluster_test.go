package polardraw_test

import (
	"context"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"polardraw"
)

// TestClientApplyMembershipLocal exercises the cluster-operations
// surface end to end over in-process shards: a join spins up a fresh
// shard, removing a member drains and disconnects it, pens decode
// bit-identically to an undisturbed reference across both epochs, and
// stale epochs are typed rejections.
func TestClientApplyMembershipLocal(t *testing.T) {
	const pens = 3
	samples, _, antennas := penScene(pens, 61)
	ctx := context.Background()

	decode := []polardraw.Option{
		polardraw.WithAntennas(antennas),
		polardraw.WithWindow(0.15),
	}
	c, err := polardraw.Open(ctx, append([]polardraw.Option{
		polardraw.WithShards(2),
		polardraw.WithJournal(polardraw.NewMemJournal(0)),
	}, decode...)...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := polardraw.Open(ctx, append([]polardraw.Option{polardraw.WithShards(1)}, decode...)...)
	if err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != 0 {
		t.Fatalf("epoch before any membership = %d, want 0", c.Epoch())
	}

	half := len(samples) / 2
	if err := c.DispatchBatch(ctx, samples[:half]); err != nil {
		t.Fatal(err)
	}

	// Epoch 1: shard-2 joins (the local dialer spins it up), shard-1
	// leaves — its live sessions migrate, then it disconnects.
	m1 := polardraw.Membership{
		Epoch: 1,
		Members: []polardraw.Member{
			{Name: "shard-0", State: polardraw.StateActive},
			{Name: "shard-2", State: polardraw.StateActive},
		},
	}
	if err := c.ApplyMembership(ctx, m1); err != nil {
		t.Fatalf("apply epoch 1: %v", err)
	}
	if got := c.Backends(); len(got) != 2 || got[0] != "shard-0" || got[1] != "shard-2" {
		t.Fatalf("backends after epoch 1 = %v", got)
	}
	if c.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", c.Epoch())
	}
	if m := c.Membership(); len(m.Members) != 2 || m.Members[0].State != polardraw.StateActive {
		t.Fatalf("membership snapshot = %+v", m)
	}

	// Replaying the epoch is a typed no-op.
	if err := c.ApplyMembership(ctx, m1); !errors.Is(err, polardraw.ErrStaleEpoch) {
		t.Fatalf("stale epoch = %v, want ErrStaleEpoch", err)
	}

	if err := c.DispatchBatch(ctx, samples[half:]); err != nil {
		t.Fatal(err)
	}
	got, err := c.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.DispatchBatch(ctx, samples); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != pens || len(want) != pens {
		t.Fatalf("decoded %d pens (reference %d), want %d", len(got), len(want), pens)
	}
	for epc, w := range want {
		if !reflect.DeepEqual(got[epc], w) {
			t.Fatalf("EPC %s: decode diverged across the membership change", epc)
		}
	}
}

// TestClientApplyMembershipRemote drives a membership change through
// the public API against real shard servers: the removed server is
// detached (not closed — another client keeps using it), and the
// applied table is pushed so the surviving server rebroadcasts it to
// its other subscribed clients.
func TestClientApplyMembershipRemote(t *testing.T) {
	samples, _, antennas := penScene(1, 67)
	ctx := context.Background()

	decode := []polardraw.Option{
		polardraw.WithAntennas(antennas),
		polardraw.WithWindow(0.15),
	}
	var addrs []string
	for i := 0; i < 2; i++ {
		srv := polardraw.NewShardServer(decode...)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(srv.Close)
		addrs = append(addrs, ln.Addr().String())
	}

	c, err := polardraw.Open(ctx,
		polardraw.WithShardServers(addrs...),
		polardraw.WithJournal(polardraw.NewMemJournal(0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	// A second, independent client of the surviving shard: it learns the
	// new table from the server's event stream, not from us.
	watcher, err := polardraw.Open(ctx, polardraw.WithShardServers(addrs[0]))
	if err != nil {
		t.Fatal(err)
	}
	events, cancel := watcher.Subscribe(ctx)
	defer cancel()

	if err := c.DispatchBatch(ctx, samples[:len(samples)/2]); err != nil {
		t.Fatal(err)
	}
	m1 := polardraw.Membership{
		Epoch:   1,
		Members: []polardraw.Member{{Name: addrs[0], Addr: addrs[0], State: polardraw.StateActive}},
	}
	if err := c.ApplyMembership(ctx, m1); err != nil {
		t.Fatalf("apply epoch 1: %v", err)
	}
	if got := c.Backends(); len(got) != 1 || got[0] != addrs[0] {
		t.Fatalf("backends after epoch 1 = %v", got)
	}

	// The push reaches the watcher through the shard server.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.Kind != polardraw.EventMembership {
				continue
			}
			if ev.Epoch != 1 || len(ev.Members) != 1 || ev.Members[0].Name != addrs[0] {
				t.Fatalf("watcher saw membership %+v, want epoch 1 / %s", ev, addrs[0])
			}
		case <-deadline:
			t.Fatal("watcher never received the membership push")
		}
		break
	}

	if err := c.DispatchBatch(ctx, samples[len(samples)/2:]); err != nil {
		t.Fatal(err)
	}
	got, err := c.Close(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("decoded %d pens, want 1", len(got))
	}
	if lost := c.SamplesLost(); lost != 0 {
		t.Fatalf("lost %d samples across the drain", lost)
	}
	watcher.Close(ctx)
}

// TestClientAdmissionSheds pins the public admission-control contract:
// over-rate dispatches fail with the typed ErrOverloaded, the shed
// count is observable, and admitted samples still decode.
func TestClientAdmissionSheds(t *testing.T) {
	samples, _, antennas := penScene(1, 71)
	ctx := context.Background()

	c, err := polardraw.Open(ctx,
		polardraw.WithAntennas(antennas),
		polardraw.WithShards(1),
		polardraw.WithAdmission(polardraw.AdmissionConfig{Rate: 1, Burst: 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	var okCount, shed int
	for i := 0; i < 12; i++ {
		switch err := c.Dispatch(ctx, samples[i]); {
		case err == nil:
			okCount++
		case errors.Is(err, polardraw.ErrOverloaded):
			shed++
		default:
			t.Fatalf("dispatch %d: %v", i, err)
		}
	}
	if okCount != 4 || shed != 8 {
		t.Fatalf("admitted %d / shed %d, want 4 / 8", okCount, shed)
	}
	if got := c.SamplesShed(); got != uint64(shed) {
		t.Fatalf("SamplesShed() = %d, want %d", got, shed)
	}
	if _, err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}
}
