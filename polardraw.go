// Package polardraw is the public client API of the PolarDraw serving
// stack: RFID-pen trajectory tracking (conf_conext_ShangguanJ16) as a
// multi-tenant streaming service.
//
// A [Client] fronts a shard tier — in-process shards by default
// ([WithShards]), or remote shard servers over the shardrpc wire
// ([WithShardServers]) — behind one transport-agnostic surface:
//
//	c, err := polardraw.Open(ctx,
//		polardraw.WithAntennas(ants),
//		polardraw.WithShards(4),
//	)
//	...
//	events, cancel := c.Subscribe(ctx)   // unified event stream
//	c.DispatchBatch(ctx, samples)        // mixed multi-pen ingest
//	res, err := c.Finalize(ctx, epc)     // decoded trajectory
//	results, err := c.Close(ctx)
//
// Every call takes a context.Context and honours deadlines and
// cancellation — a call blocked on a dead remote returns
// context.DeadlineExceeded promptly instead of hanging — and failures
// are drawn from a typed taxonomy ([ErrClosed], [ErrUnknownEPC],
// [ErrSessionLimit], [ErrBackendUnavailable], [ErrTooFewSamples]) that
// round-trips the shardrpc wire, so errors.Is behaves identically
// however the deployment is topologized.
//
// Decode parameters are per session, not per process: [WithBeamTopK],
// [WithCommitLag], [WithAdaptiveBeam], [WithWindow], and
// [WithSpuriousPhase] are accepted both by [Open] (the client-wide
// default) and by [Client.OpenSession] (one pen's override), and
// travel to remote shards losslessly — a session opened with options
// on a remote shard decodes bit-identically to the same options in
// process.
//
// Consumption is one unified [Event] stream ([Client.Subscribe]):
// window closes, live points, smoother commits, evictions, and backend
// health transitions, delivered identically across local, RPC, and
// routed backends. The per-callback hooks this stream replaces remain
// available on the internal packages as deprecated adapters.
package polardraw

import (
	"polardraw/internal/core"
	"polardraw/internal/reader"
	"polardraw/internal/rf"
	"polardraw/internal/session"
	"polardraw/internal/shardrpc"
	"polardraw/internal/telemetry"
)

// Re-exported types: the public surface of the serving stack. Aliases
// keep the internal packages freely refactorable behind this facade
// while letting ingest code keep using internal/reader's types.
type (
	// Sample is one raw RFID tag read (internal/reader's ingest type).
	Sample = reader.Sample
	// Result is a decoded pen trajectory plus diagnostics.
	Result = core.Result
	// Window is one averaged preprocessing window.
	Window = core.Window
	// Stats is a point-in-time snapshot of one session's counters.
	Stats = session.Stats
	// DecodeStats is the decoder telemetry embedded in Stats.
	DecodeStats = core.DecodeStats
	// Event is one entry of the unified serving event stream.
	Event = session.Event
	// EventKind discriminates Event payloads.
	EventKind = session.EventKind
	// CancelFunc releases a Subscribe subscription.
	CancelFunc = session.CancelFunc
	// BackendHealth is a per-backend routing health snapshot.
	BackendHealth = session.BackendHealth
	// Antenna describes one reader antenna (position, polarization).
	Antenna = rf.Antenna
	// OpenOptions is the wire-portable per-session decode
	// configuration assembled by session options.
	OpenOptions = session.OpenOptions
	// Journal is the durability WAL attached with WithJournal.
	Journal = session.Journal
	// Membership is an epoch-numbered routing table applied with
	// Client.ApplyMembership: who serves traffic, who is draining, who
	// is standing by.
	Membership = session.Membership
	// Member is one backend row of a Membership table.
	Member = session.Member
	// BackendState is a Member's routing role (StateActive,
	// StateDraining, StateSpare).
	BackendState = session.BackendState
	// AdmissionConfig bounds ingress before shedding (WithAdmission).
	AdmissionConfig = session.AdmissionConfig
	// SubscribeOptions narrows a filtered subscription
	// (Client.SubscribeFiltered) to an event-kind and/or EPC
	// allow-list; the zero value subscribes to everything.
	SubscribeOptions = session.SubscribeOptions
	// TelemetryRegistry is the process-local metric registry every
	// layer records into (see Client.Telemetry, ShardServer.Telemetry).
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time copy of a registry —
	// counters, gauges, and mergeable histograms. Snapshots from
	// multiple shards Merge into cluster totals (Client.ClusterStats)
	// and render to Prometheus text via WritePrometheus.
	TelemetrySnapshot = telemetry.Snapshot
	// MetricsServer is the background /metrics HTTP listener started
	// by ShardServer.ServeMetrics (and the -metrics-addr flags).
	MetricsServer = telemetry.Server
)

// Membership states (see BackendState).
const (
	// StateActive members take their rendezvous share of new pens.
	StateActive = session.StateActive
	// StateDraining members accept no new pens; their live sessions
	// migrate to healthy peers.
	StateDraining = session.StateDraining
	// StateSpare members are connected and health-probed but take no
	// traffic until a later epoch activates them.
	StateSpare = session.StateSpare
)

// Journal constructors (see WithJournal). NewMemJournal keeps the WAL
// in memory — durable across shard deaths, not client crashes;
// NewFileJournal persists it to an append-only file that survives a
// client restart. retain bounds buffered samples per stroke beyond the
// latest checkpoint (0 = session.DefaultJournalRetention); older
// samples age out and are counted in the journal's Lost.
var (
	NewMemJournal  = session.NewMemJournal
	NewFileJournal = session.NewFileJournal
)

// Event kinds (see the session package's docs for each payload).
const (
	EventWindowClose   = session.EventWindowClose
	EventPoint         = session.EventPoint
	EventCommit        = session.EventCommit
	EventEvict         = session.EventEvict
	EventBackendHealth = session.EventBackendHealth
	EventCheckpoint    = session.EventCheckpoint
	EventMembership    = session.EventMembership
)

// The error taxonomy. Remote backends round-trip these sentinels over
// the shardrpc wire, so errors.Is works identically across local, RPC,
// and routed deployments.
var (
	// ErrClosed: the client (or its backend) has been closed.
	ErrClosed = session.ErrClosed
	// ErrUnknownEPC: the EPC has no live session.
	ErrUnknownEPC = session.ErrUnknownEPC
	// ErrSessionLimit: an explicit OpenSession would exceed the
	// backend's session cap.
	ErrSessionLimit = session.ErrSessionLimit
	// ErrBackendUnavailable: a backend's transport failed before the
	// operation could complete.
	ErrBackendUnavailable = session.ErrBackendUnavailable
	// ErrTooFewSamples: the session's stream was too short to decode.
	ErrTooFewSamples = core.ErrTooFewSamples
	// ErrVersionMismatch: a shardrpc connect found mixed protocol
	// generations between client and server.
	ErrVersionMismatch = shardrpc.ErrVersionMismatch
	// ErrOverloaded: the admission controller (WithAdmission) shed the
	// dispatch; the sample was refused before the journal saw it.
	ErrOverloaded = session.ErrOverloaded
	// ErrStaleEpoch: an ApplyMembership carried an epoch not strictly
	// greater than the current one; nothing changed.
	ErrStaleEpoch = session.ErrStaleEpoch
)

// Serving defaults, chosen by the accuracy studies in
// internal/experiment (see core.DefaultBeamTopK and
// core.DefaultCommitLag for the provenance).
const (
	// DefaultBeamTopK is Open's default decoder beam count bound.
	DefaultBeamTopK = core.DefaultBeamTopK
	// DefaultCommitLag is Open's default fixed-lag smoothing depth.
	DefaultCommitLag = core.DefaultCommitLag
)
