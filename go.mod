module polardraw

go 1.24.0
