package polardraw_test

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"polardraw"
)

// TestClusterStats is the telemetry aggregation acceptance: a client
// over two real shard servers merges both shards' registries with its
// own, so the cluster view carries decode-layer histograms neither the
// client nor a single shard recorded alone.
func TestClusterStats(t *testing.T) {
	const pens = 8
	samples, _, antennas := penScene(pens, 73)
	ctx := context.Background()

	decode := []polardraw.Option{
		polardraw.WithAntennas(antennas),
		polardraw.WithWindow(0.15),
	}
	var addrs []string
	var srvs []*polardraw.ShardServer
	for i := 0; i < 2; i++ {
		srv := polardraw.NewShardServer(decode...)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(srv.Close)
		srvs = append(srvs, srv)
		addrs = append(addrs, ln.Addr().String())
	}

	c, err := polardraw.Open(ctx, polardraw.WithShardServers(addrs...))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DispatchBatch(ctx, samples); err != nil {
		t.Fatal(err)
	}

	// Decode is asynchronous behind each shard's queues: wait until both
	// shards have closed windows, so the aggregation claim is not
	// satisfiable from one shard alone.
	deadline := time.Now().Add(10 * time.Second)
	for {
		a := srvs[0].Telemetry().Snapshot().Histograms["polardraw_decode_window_close_seconds"]
		b := srvs[1].Telemetry().Snapshot().Histograms["polardraw_decode_window_close_seconds"]
		if a.Count > 0 && b.Count > 0 {
			agg, err := c.ClusterStats(ctx)
			if err != nil {
				t.Fatalf("cluster stats: %v", err)
			}
			got := agg.Histograms["polardraw_decode_window_close_seconds"]
			if got.Count < a.Count+b.Count {
				t.Fatalf("aggregate windows %d < shard sum %d+%d", got.Count, a.Count, b.Count)
			}
			if agg.Histograms["polardraw_rpc_batch_samples"].Count == 0 {
				t.Fatal("aggregate missing the client-side rpc batch histogram")
			}
			if agg.Gauges["polardraw_sessions_live"] != float64(pens) {
				t.Fatalf("aggregate sessions_live = %v, want %d across both shards",
					agg.Gauges["polardraw_sessions_live"], pens)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("both shards never closed windows (shard0=%d shard1=%d); "+
				"pens are not spreading across the cluster", a.Count, b.Count)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if _, err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestClientSubscribeFiltered pins the public filter contract over
// in-process shards: a subscription narrowed to commits for one pen
// receives exactly that, while an unfiltered peer subscription on the
// same client sees the full stream.
func TestClientSubscribeFiltered(t *testing.T) {
	const pens = 2
	samples, epcs, antennas := penScene(pens, 79)
	ctx := context.Background()

	c, err := polardraw.Open(ctx,
		polardraw.WithAntennas(antennas),
		polardraw.WithShards(2),
		polardraw.WithWindow(0.15),
		polardraw.WithCommitLag(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := epcs[0]
	fevs, fcancel := c.SubscribeFiltered(ctx, polardraw.SubscribeOptions{
		Kinds: []polardraw.EventKind{polardraw.EventCommit},
		EPCs:  []string{want},
	})
	defer fcancel()
	pevs, pcancel := c.Subscribe(ctx)
	defer pcancel()

	if err := c.DispatchBatch(ctx, samples); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(10 * time.Second)
	var commits int
	peerKinds := map[polardraw.EventKind]bool{}
	for commits == 0 || !peerKinds[polardraw.EventPoint] || !peerKinds[polardraw.EventCommit] {
		select {
		case ev := <-fevs:
			if ev.Kind != polardraw.EventCommit {
				t.Fatalf("filtered subscriber saw kind %v, want only commits", ev.Kind)
			}
			if ev.EPC != want {
				t.Fatalf("filtered subscriber saw EPC %q, want only %q", ev.EPC, want)
			}
			commits++
		case ev := <-pevs:
			peerKinds[ev.Kind] = true
		case <-deadline:
			t.Fatalf("timed out: commits=%d peerKinds=%v", commits, peerKinds)
		}
	}
	if _, err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestServeMetrics checks the /metrics wiring end to end at the public
// layer: a client under load exposes the router and decode families in
// Prometheus text form on the address it was asked to serve.
func TestServeMetrics(t *testing.T) {
	samples, _, antennas := penScene(2, 83)
	ctx := context.Background()

	c, err := polardraw.Open(ctx,
		polardraw.WithAntennas(antennas),
		polardraw.WithShards(1),
		polardraw.WithWindow(0.15),
	)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := c.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	if err := c.DispatchBatch(ctx, samples); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Close(ctx); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + ms.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, fam := range []string{
		"polardraw_router_dispatch_seconds",
		"polardraw_decode_window_close_seconds",
		"polardraw_sessions_live",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("/metrics missing family %s:\n%s", fam, text)
		}
	}
}
