package polardraw

import (
	"math"
	"net"
	"testing"
	"time"

	"polardraw/internal/core"
	"polardraw/internal/experiment"
	"polardraw/internal/font"
	"polardraw/internal/geom"
	"polardraw/internal/llrp"
	"polardraw/internal/motion"
	"polardraw/internal/reader"
	"polardraw/internal/recognition"
	"polardraw/internal/rf"
	"polardraw/internal/tag"
)

// TestEndToEndPipeline exercises the full stack exactly as the
// quickstart example does: font -> motion -> channel -> reader ->
// tracker -> recognizer, with hard assertions at each stage.
func TestEndToEndPipeline(t *testing.T) {
	rig := motion.DefaultRig()
	antennas := rig.Antennas()

	glyph, ok := font.Lookup('G')
	if !ok {
		t.Fatal("missing glyph G")
	}
	path := glyph.Path().Scale(0.20).Translate(geom.Vec2{X: 0.18, Y: 0.02})
	session := motion.Write(path, "G", motion.Config{Seed: 42})
	if session.Duration() < 1 {
		t.Fatalf("session too short: %v s", session.Duration())
	}

	channel := &rf.Channel{Reflectors: rf.OfficeReflectors(rig.BoardW)}
	pen := tag.AD227(7)
	pen.ApplyTo(channel)
	rd := reader.New(reader.Config{
		Antennas: antennas[:],
		Channel:  channel,
		EPC:      pen.EPC,
		Seed:     42,
	})
	samples := rd.Inventory(session)
	if len(samples) < 100 {
		t.Fatalf("only %d reads", len(samples))
	}

	tracker := core.New(core.Config{Antennas: antennas})
	result, err := tracker.Track(samples)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := geom.ProcrustesDistance(result.Trajectory, session.Truth, 64)
	if err != nil {
		t.Fatal(err)
	}
	if dist > 0.12 {
		t.Errorf("tracking error %v m, out of the paper's regime", dist)
	}

	lr := recognition.NewLetterRecognizer()
	ranked, err := lr.Rank(result.Trajectory)
	if err != nil {
		t.Fatal(err)
	}
	// The true letter must at least rank near the top on this seed.
	pos := -1
	for i, m := range ranked {
		if m.R == 'G' {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 4 {
		t.Errorf("G ranked %d (top match %c)", pos, ranked[0].R)
	}
}

// TestEndToEndOverLLRP runs the same pipeline with the reader samples
// shipped through the LLRP wire protocol over loopback TCP, asserting
// the wire round trip does not change the tracking result beyond
// quantization.
func TestEndToEndOverLLRP(t *testing.T) {
	rig := motion.DefaultRig()
	antennas := rig.Antennas()
	glyph, _ := font.Lookup('L')
	path := glyph.Path().Scale(0.20).Translate(geom.Vec2{X: 0.2, Y: 0.02})
	session := motion.Write(path, "L", motion.Config{Seed: 7})
	channel := &rf.Channel{Reflectors: rf.OfficeReflectors(rig.BoardW)}
	pen := tag.AD227(9)
	pen.ApplyTo(channel)
	rd := reader.New(reader.Config{Antennas: antennas[:], Channel: channel, EPC: pen.EPC, Seed: 7})
	direct := rd.Inventory(session)

	srv := &llrp.Server{Samples: direct, BatchSize: 32}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	client, err := llrp.Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Start(); err != nil {
		t.Fatal(err)
	}
	wired, err := client.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(wired) != len(direct) {
		t.Fatalf("wire lost samples: %d vs %d", len(wired), len(direct))
	}

	tracker := core.New(core.Config{Antennas: antennas})
	a, err := tracker.Track(direct)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tracker.Track(wired)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trajectory) != len(b.Trajectory) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(a.Trajectory), len(b.Trajectory))
	}
	var worst float64
	for i := range a.Trajectory {
		worst = math.Max(worst, a.Trajectory[i].Dist(b.Trajectory[i]))
	}
	// The wire quantizes RSS to centi-dB and phase to the 12-bit grid
	// the reader already used, so decoding should agree to within a
	// couple of grid cells.
	if worst > 0.02 {
		t.Errorf("wire round trip moved the trajectory by %v m", worst)
	}
}

// TestMultiUserSeparation exercises the section 7 future-work
// extension: two writers share the reader, their tags are separated by
// EPC, and each stream tracks independently.
func TestMultiUserSeparation(t *testing.T) {
	rig := motion.DefaultRig()
	antennas := rig.Antennas()
	gl, _ := font.Lookup('L')
	gz, _ := font.Lookup('Z')
	left := motion.Write(gl.Path().Scale(0.15).Translate(geom.Vec2{X: 0.06, Y: 0.05}), "L", motion.Config{Seed: 5})
	right := motion.Write(gz.Path().Scale(0.15).Translate(geom.Vec2{X: 0.34, Y: 0.05}), "Z", motion.Config{Seed: 6})
	channel := &rf.Channel{Reflectors: rf.OfficeReflectors(rig.BoardW)}
	tag.AD227(1).ApplyTo(channel)
	rd := reader.New(reader.Config{Antennas: antennas[:], Channel: channel, Seed: 8})
	mixed := rd.MultiInventory([]reader.TaggedScene{
		{EPC: "aa01", Scene: left},
		{EPC: "aa02", Scene: right},
	})
	streams := reader.SplitByEPC(mixed)
	if len(streams) != 2 {
		t.Fatalf("streams = %d", len(streams))
	}

	tracker := core.New(core.Config{Antennas: antennas})
	truths := map[string]geom.Polyline{"aa01": left.Truth, "aa02": right.Truth}
	for epc, samples := range streams {
		res, err := tracker.Track(samples)
		if err != nil {
			t.Fatalf("%s: %v", epc, err)
		}
		d, err := geom.ProcrustesDistance(res.Trajectory, truths[epc], 64)
		if err != nil {
			t.Fatal(err)
		}
		// Half the read rate per tag costs accuracy; the shape must
		// still land in the usable regime.
		if d > 0.15 {
			t.Errorf("%s tracked at %v m", epc, d)
		}
		t.Logf("writer %s: %.1f cm with shared reader", epc, d*100)
	}
}

// TestPaperHeadline asserts the repository's one-line claim: the
// 2-antenna PolarDraw achieves trajectory accuracy comparable to the
// 4-antenna baselines on the same workload (within a factor of two
// either way).
func TestPaperHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-system comparison is slow")
	}
	sc := experiment.Default(1)
	res, err := experiment.Figure19CDF(sc, []rune{'C', 'M', 'Z'}, 2)
	if err != nil {
		t.Fatal(err)
	}
	pMed, _ := res.Summary(experiment.PolarDraw2)
	tMed, _ := res.Summary(experiment.Tagoram4)
	rMed, _ := res.Summary(experiment.RFIDraw4)
	t.Logf("median cm: PolarDraw-2 %.1f, Tagoram-4 %.1f, RF-IDraw-4 %.1f", pMed, tMed, rMed)
	if pMed > 2*tMed || pMed > 2*rMed {
		t.Errorf("PolarDraw (%v cm) is not comparable to the baselines (%v, %v)", pMed, tMed, rMed)
	}
	// And the cost claim: half the hardware.
	cost := experiment.Table1Cost()
	if cost.Systems[0].Total*2 > cost.Systems[1].Total {
		t.Error("cost-halving claim violated")
	}
}
