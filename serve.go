package polardraw

import (
	"net"

	"polardraw/internal/session"
	"polardraw/internal/shardrpc"
	"polardraw/internal/telemetry"
)

// ShardServer hosts one shard of a multi-process PolarDraw tier: a
// session manager behind the shardrpc wire protocol, ready to be
// driven by a Client opened with WithShardServers. It accepts the same
// options as Open (topology options are ignored; decode options set
// the shard's serving defaults, which per-session OpenOptions may
// override over the wire).
type ShardServer struct {
	srv *shardrpc.Server
	tel *telemetry.Registry
}

// NewShardServer builds a shard server. Call Serve or ListenAndServe
// to accept connections.
func NewShardServer(opts ...Option) *ShardServer {
	cfg := defaultClientConfig()
	for _, o := range opts {
		o.applyClient(&cfg)
	}
	tel := telemetry.NewRegistry()
	sess := cfg.sessionConfig()
	sess.Telemetry = tel
	if sess.MaxSessions <= 0 {
		// A shard server is a long-lived multi-tenant process: default
		// well above the library's 64 so LRU eviction is a policy
		// choice, not a surprise.
		sess.MaxSessions = DefaultServerMaxSessions
	}
	s := &ShardServer{srv: shardrpc.NewServer(shardrpc.ServerConfig{
		Session:     sess,
		EventBuffer: cfg.eventBuffer,
		Telemetry:   tel,
	}), tel: tel}
	m := s.srv.Manager()
	tel.GaugeFunc("polardraw_sessions_live", func() float64 {
		return float64(m.Len())
	})
	return s
}

// Telemetry exposes the shard's metric registry: every decode,
// session, and wire metric the shard records, snapshot by clients via
// the v5 telemetry RPC and exposable as Prometheus text with
// ServeMetrics.
func (s *ShardServer) Telemetry() *TelemetryRegistry { return s.tel }

// ServeMetrics starts a background HTTP listener on addr serving the
// shard's telemetry as Prometheus text exposition at /metrics. It
// returns the bound address (useful with a ":0" port) and a closer.
func (s *ShardServer) ServeMetrics(addr string) (*MetricsServer, error) {
	return telemetry.ListenAndServe(addr, s.tel.Snapshot)
}

// DefaultServerMaxSessions is NewShardServer's live-session cap when
// WithMaxSessions is not given.
const DefaultServerMaxSessions = 1024

// Serve accepts and serves shardrpc connections on ln until Close. It
// returns nil after Close, or the first accept error otherwise.
func (s *ShardServer) Serve(ln net.Listener) error { return s.srv.Serve(ln) }

// ListenAndServe listens on addr (host:port) and serves until Close.
func (s *ShardServer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.srv.Serve(ln)
}

// Manager exposes the hosted session manager (telemetry,
// subscriptions on the serving side).
func (s *ShardServer) Manager() *session.Manager { return s.srv.Manager() }

// EventsDropped counts events shed at full subscriber queues.
func (s *ShardServer) EventsDropped() uint64 { return s.srv.EventsDropped() }

// Close stops accepting, tears down connections, and finalizes every
// session.
func (s *ShardServer) Close() { s.srv.Close() }

// Abort drops the listener and every connection without finalizing
// sessions — the shard dies as if the process was killed mid-stroke.
// Crash-recovery test hook (see shardrpc.Server.Abort).
func (s *ShardServer) Abort() { s.srv.Abort() }
