package polardraw

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"polardraw/internal/core"
	"polardraw/internal/session"
	"polardraw/internal/shardrpc"
	"polardraw/internal/telemetry"
)

// Client is the public handle on a PolarDraw serving tier: a mixed
// multi-pen ingest surface, per-session control, and one unified event
// stream, over either in-process shards (WithShards) or remote shard
// servers (WithShardServers). All methods are safe for concurrent use
// and honour their context's deadline and cancellation.
type Client struct {
	cfg     clientConfig
	backend session.ShardBackend
	tel     *telemetry.Registry

	sm     *session.ShardedManager // local mode
	router *session.Router         // remote mode

	// remotes tracks the live shardrpc connections by backend name.
	// Membership joins add entries (the router's dialer); leavers are
	// detached by the router and dropped at the next reconcile.
	remoteMu sync.Mutex
	remotes  map[string]*shardrpc.Client // remote mode
}

// Open builds a client. With no options it runs session.DefaultShards
// in-process shards on the default rig geometry — tests and examples;
// real deployments pass WithAntennas plus either WithShards or
// WithShardServers. Remote mode dials every server up front (honouring
// ctx) so a misconfigured cluster fails at Open, not at first
// dispatch; a version-skewed server fails with ErrVersionMismatch.
func Open(ctx context.Context, opts ...Option) (*Client, error) {
	cfg := defaultClientConfig()
	for _, o := range opts {
		o.applyClient(&cfg)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, tel: telemetry.NewRegistry()}
	if len(cfg.servers) == 0 {
		sess := cfg.sessionConfig()
		sess.Telemetry = c.tel
		c.sm = session.NewShardedManager(session.ShardedConfig{
			Session:      sess,
			Shards:       cfg.shards,
			QueueSize:    cfg.shardQueue,
			DropWhenFull: cfg.drop,
		})
		if cfg.journal != nil {
			c.sm.Router().SetJournal(cfg.journal)
		}
		c.sm.Router().SetAdmission(cfg.admission)
		c.sm.Router().SetTelemetry(c.tel)
		sm := c.sm
		c.tel.GaugeFunc("polardraw_sessions_live", func() float64 {
			return float64(sm.Len())
		})
		c.backend = c.sm
		return c, nil
	}
	c.remotes = make(map[string]*shardrpc.Client, len(cfg.servers))
	nbs := make([]session.NamedBackend, 0, len(cfg.servers))
	for _, addr := range cfg.servers {
		if err := ctx.Err(); err != nil {
			c.closeRemotes()
			return nil, err
		}
		rc, err := shardrpc.Dial(shardrpc.ClientConfig{
			Addr:        addr,
			EventBuffer: cfg.eventBuffer,
			Defaults:    cfg.decode,
			Telemetry:   c.tel,
		})
		if err != nil {
			c.closeRemotes()
			return nil, fmt.Errorf("polardraw: shard %s: %w", addr, err)
		}
		c.remotes[addr] = rc
		nbs = append(nbs, session.NamedBackend{Name: addr, Backend: rc})
	}
	c.router = session.NewRouter(nbs)
	c.router.SetEventBuffer(cfg.eventBuffer)
	// Membership joins dial a fresh shardrpc connection per member; the
	// member's Addr (its Name when unset) is the dial address.
	c.router.SetDialer(func(name, addr string) (session.ShardBackend, error) {
		rc, err := shardrpc.Dial(shardrpc.ClientConfig{
			Addr:        addr,
			EventBuffer: cfg.eventBuffer,
			Defaults:    cfg.decode,
			Telemetry:   c.tel,
		})
		if err != nil {
			return nil, err
		}
		c.remoteMu.Lock()
		c.remotes[name] = rc
		c.remoteMu.Unlock()
		return rc, nil
	})
	if cfg.journal != nil {
		c.router.SetJournal(cfg.journal)
	}
	c.router.SetAdmission(cfg.admission)
	c.router.SetTelemetry(c.tel)
	if cfg.heartbeat > 0 {
		c.router.StartHeartbeat(cfg.heartbeat)
	}
	c.backend = c.router
	return c, nil
}

// closeRemotes abandons already-dialed connections after a failed
// Open.
func (c *Client) closeRemotes() {
	c.remoteMu.Lock()
	defer c.remoteMu.Unlock()
	for _, rc := range c.remotes {
		_, _ = rc.Close(context.Background())
	}
	c.remotes = nil
}

// snapshotRemotes copies the live remote connection set.
func (c *Client) snapshotRemotes() map[string]*shardrpc.Client {
	c.remoteMu.Lock()
	defer c.remoteMu.Unlock()
	out := make(map[string]*shardrpc.Client, len(c.remotes))
	for name, rc := range c.remotes {
		out[name] = rc
	}
	return out
}

// Remote reports whether the client fronts remote shard servers.
func (c *Client) Remote() bool { return c.router != nil }

// OpenSession eagerly creates the EPC's session with per-session
// decode options overriding the backend defaults. Unlike the implicit
// create on first Dispatch, OpenSession never evicts another session
// to make room: at the session cap it fails with ErrSessionLimit.
// Opening a live EPC is a no-op. Options travel to remote shards
// losslessly, so a remotely opened session decodes bit-identically to
// a local one with the same options.
func (c *Client) OpenSession(ctx context.Context, epc string, opts ...SessionOption) error {
	var o session.OpenOptions
	for _, op := range opts {
		op.applySession(&o)
	}
	return c.backend.Open(ctx, epc, o)
}

// Dispatch routes one sample to its EPC's session, creating the
// session on first sight. With blocking backpressure (the default) it
// returns ctx.Err() if the context ends while queues are full.
func (c *Client) Dispatch(ctx context.Context, smp Sample) error {
	return c.backend.Dispatch(ctx, smp)
}

// DispatchBatch routes a batch (e.g. one RO_ACCESS_REPORT) in order.
func (c *Client) DispatchBatch(ctx context.Context, batch []Sample) error {
	return c.backend.DispatchBatch(ctx, batch)
}

// Finalize evicts one session and returns its decoded trajectory
// (ErrUnknownEPC if none; ErrTooFewSamples if the stream was too
// short).
func (c *Client) Finalize(ctx context.Context, epc string) (*Result, error) {
	return c.backend.Finalize(ctx, epc)
}

// Stats snapshots every live session across all shards, sorted by EPC.
func (c *Client) Stats(ctx context.Context) ([]Stats, error) {
	return c.backend.Stats(ctx)
}

// EvictIdle finalizes every session idle for at least maxIdle and
// returns how many were evicted.
func (c *Client) EvictIdle(ctx context.Context, maxIdle time.Duration) (int, error) {
	return c.backend.EvictIdle(ctx, maxIdle)
}

// Subscribe attaches a consumer to the unified event stream: window
// closes, live points, smoother commits, evictions, and (in remote
// mode) backend health transitions, delivered identically whichever
// transport backs the tier. The channel is buffered (WithEventBuffer);
// a consumer that falls behind loses events rather than stalling
// decode. Cancel (or ctx expiry) detaches and closes the channel.
func (c *Client) Subscribe(ctx context.Context) (<-chan Event, CancelFunc) {
	return c.backend.Subscribe(ctx)
}

// SubscribeFiltered is Subscribe narrowed by opts: only events whose
// kind is in opts.Kinds (all kinds when empty) for EPCs in opts.EPCs
// (all pens when empty; events with no EPC, like backend health and
// membership, always pass the EPC filter) are delivered. The filter
// is enforced at the event source — before the events occupy the
// subscriber's buffer locally, and before they are framed onto the
// wire against v5 shard servers — so a consumer watching one pen's
// commits is not billed the whole tier's fan-out.
func (c *Client) SubscribeFiltered(ctx context.Context, opts SubscribeOptions) (<-chan Event, CancelFunc) {
	return c.backend.SubscribeFiltered(ctx, opts)
}

// Telemetry exposes the client's metric registry: decode, session,
// router, journal, and (remote mode) wire metrics recorded in this
// process. Serve it with ServeMetrics or snapshot it directly; for
// cluster-wide numbers use ClusterStats.
func (c *Client) Telemetry() *TelemetryRegistry { return c.tel }

// ServeMetrics starts a background HTTP listener on addr serving this
// process's registry as Prometheus text exposition at /metrics. It
// returns the bound address (useful with a ":0" port) and a closer.
func (c *Client) ServeMetrics(addr string) (*MetricsServer, error) {
	return telemetry.ListenAndServe(addr, c.tel.Snapshot)
}

// ClusterStats aggregates telemetry across the whole tier: the
// client's own registry (router/journal/wire metrics, plus all decode
// metrics in local mode) merged with a snapshot pulled from every
// remote shard server over the v5 telemetry RPC. Counters and
// histogram buckets add; gauges sum. Pre-v5 servers are skipped
// silently (their metrics simply don't contribute); transport
// failures are returned alongside the snapshot built from the shards
// that did answer.
func (c *Client) ClusterStats(ctx context.Context) (TelemetrySnapshot, error) {
	agg := c.tel.Snapshot()
	if c.router == nil {
		return agg, nil
	}
	var errs []error
	for name, rc := range c.snapshotRemotes() {
		s, err := rc.Telemetry(ctx)
		if err != nil {
			if errors.Is(err, ErrVersionMismatch) {
				continue
			}
			errs = append(errs, fmt.Errorf("polardraw: telemetry from %s: %w", name, err))
			continue
		}
		agg.Merge(s)
	}
	return agg, errors.Join(errs...)
}

// Close stops ingress, drains every shard, finalizes all sessions, and
// returns the decoded results keyed by EPC (sessions too short to
// decode are omitted; their Evict events still fire). Close is
// terminal and idempotent.
func (c *Client) Close(ctx context.Context) (map[string]*Result, error) {
	return c.backend.Close(ctx)
}

// Len returns the number of live sessions across all shards (remote
// mode polls every server; ctx bounds the sweep).
func (c *Client) Len(ctx context.Context) (int, error) {
	if c.sm != nil {
		return c.sm.Len(), nil
	}
	n := 0
	for _, rc := range c.snapshotRemotes() {
		k, err := rc.Len(ctx)
		if err != nil {
			return n, err
		}
		n += k
	}
	return n, nil
}

// Backends returns the shard backend names in configuration order
// (shard-N locally, server addresses remotely).
func (c *Client) Backends() []string { return c.routerOf().Backends() }

// BackendFor reports which backend (by Backends name) the EPC
// currently routes to, including any failover or Handoff override.
func (c *Client) BackendFor(epc string) string { return c.routerOf().BackendFor(epc) }

// Health snapshots per-backend routing health in configuration order.
func (c *Client) Health() []BackendHealth { return c.routerOf().Health() }

// HealthCounts summarizes Health into healthy/unhealthy backend
// counts.
func (c *Client) HealthCounts() (healthy, unhealthy int) {
	return c.routerOf().HealthCounts()
}

func (c *Client) routerOf() *session.Router {
	if c.sm != nil {
		return c.sm.Router()
	}
	return c.router
}

// Handoff gracefully moves one EPC's live session to the named backend
// (see Backends): export on the current owner, checkpoint into the
// journal, restore on the target, pin the route. Requires WithJournal;
// use it to drain a shard before maintenance instead of killing it and
// paying a crash recovery.
func (c *Client) Handoff(ctx context.Context, epc, backend string) error {
	return c.routerOf().Handoff(ctx, epc, backend)
}

// IngressDropped counts samples discarded at full shard ingress queues
// (WithDropWhenFull, local mode) — remote shards count drops
// server-side in their own telemetry.
func (c *Client) IngressDropped() uint64 {
	if c.sm != nil {
		return c.sm.IngressDropped()
	}
	return 0
}

// SamplesLost counts samples that are gone for good (remote mode;
// always zero locally): samples the servers rejected or that aged out
// of the resend buffer during a long outage. Samples merely in flight
// across a transport failure are resent after the automatic reconnect
// and do not count (against pre-v3 servers the legacy semantics apply:
// every sample buffered across a failure is lost and counted).
func (c *Client) SamplesLost() uint64 {
	var n uint64
	for _, rc := range c.snapshotRemotes() {
		n += rc.Lost()
	}
	return n
}

// EventsDropped counts events shed at full subscriber channels: a
// consumer that falls behind loses events rather than stalling decode
// (see WithEventBuffer). Shed events are gone; the counter is how an
// operator notices an under-provisioned consumer.
func (c *Client) EventsDropped() uint64 { return c.routerOf().EventsDropped() }

// SamplesShed counts dispatches refused with ErrOverloaded by the
// admission controller (WithAdmission). Shed samples were never
// journaled or delivered — the caller decides whether to retry, slow
// down, or drop.
func (c *Client) SamplesShed() uint64 { return c.routerOf().Shed() }

// Membership snapshots the current routing table: the latest applied
// epoch (0 until the first ApplyMembership) and every backend with its
// state, in routing order.
func (c *Client) Membership() Membership { return c.routerOf().Membership() }

// Epoch returns the latest applied membership epoch, 0 until the first
// ApplyMembership.
func (c *Client) Epoch() uint64 { return c.routerOf().Epoch() }

// ApplyMembership atomically moves the client's routing table to a new
// epoch-numbered membership, without restarting anything:
//
//   - New members join: remote mode dials them (Member.Addr, or the
//     name when unset), local mode spins up fresh in-process shards.
//     Active joiners take their rendezvous share of NEW pens
//     immediately; live sessions stay where they are so a join never
//     forks a mid-stroke decode.
//   - Members marked StateDraining stop taking new pens and have every
//     live session migrated to a healthy peer (requires WithJournal
//     when a member can't export directly).
//   - Current backends missing from the table leave: drained the same
//     way, then disconnected once they own nothing.
//
// An epoch not strictly greater than the current one fails with
// ErrStaleEpoch and changes nothing, so replayed or racing updates are
// harmless. In remote mode the applied table is also pushed to every
// member (best effort), so v4 shard servers rebroadcast it to their
// other subscribed clients; pre-v4 servers and already-current epochs
// are skipped silently. Errors from individual joins, migrations, or
// pushes are joined and returned; the epoch still applies, so retry
// stragglers with a later epoch.
func (c *Client) ApplyMembership(ctx context.Context, m Membership) error {
	err := c.routerOf().ApplyMembership(ctx, m)
	if err != nil && errors.Is(err, ErrStaleEpoch) {
		return err
	}
	if c.router == nil {
		return err
	}
	// Reconcile the connection map against the applied table: leavers
	// were already detached by the router, so just drop them.
	live := make(map[string]bool)
	for _, mem := range c.router.Membership().Members {
		live[mem.Name] = true
	}
	c.remoteMu.Lock()
	for name := range c.remotes {
		if !live[name] {
			delete(c.remotes, name)
		}
	}
	c.remoteMu.Unlock()
	// Fan the table out to the members themselves so shard servers can
	// rebroadcast it on their event streams.
	errs := []error{err}
	for name, rc := range c.snapshotRemotes() {
		perr := rc.SetMembership(ctx, m)
		if perr == nil ||
			errors.Is(perr, ErrStaleEpoch) || // someone beat us to it
			errors.Is(perr, ErrVersionMismatch) { // pre-v4 server
			continue
		}
		errs = append(errs, fmt.Errorf("polardraw: push membership to %s: %w", name, perr))
	}
	return errors.Join(errs...)
}

// StencilCacheStats reports the shared per-grid stencil cache's
// cumulative hit/miss counters. Local mode only: remote shards own
// their grids (ok == false).
func (c *Client) StencilCacheStats() (hits, misses uint64, ok bool) {
	if c.sm == nil {
		return 0, 0, false
	}
	h, m := c.sm.Tracker().StencilCacheStats()
	return h, m, true
}

// Tracker exposes the local tier's shared batch tracker (same grid the
// sessions use), nil in remote mode. It exists for equivalence tests
// that compare streamed decodes against batch decodes on one grid.
func (c *Client) Tracker() *core.Tracker {
	if c.sm == nil {
		return nil
	}
	return c.sm.Tracker()
}
